// Concurrency/determinism suite for the sharded scoring server
// (src/serve/server/): N client threads x M shards, interleaved
// single-row and batch requests, every response byte-identical to a
// serial RowScorer oracle regardless of shard count, batcher settings,
// or where the micro-batch cuts happen to land. Also locks down the
// backpressure contract (clean kUnavailable on saturation, caller
// buffers untouched), the shutdown drain (every accepted request
// completes), and the serve.server.* telemetry namespace being disjoint
// from the library-call series. The tsan preset re-runs the whole suite
// under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/gbdt/booster.h"
#include "src/obs/metrics.h"
#include "src/serve/scorer.h"
#include "src/serve/server/scoring_server.h"
#include "tests/property_util.h"

namespace safe {
namespace {

using serve::server::ScoringServer;
using serve::server::ServerOptions;
using serve::server::ServerStats;

// A probability can never be negative, so an untouched output slot is
// distinguishable from every legitimate response.
constexpr double kSentinel = -1.0;

struct Fixture {
  Dataset data;
  FeaturePlan plan;
  gbdt::Booster booster;
  serve::RowScorer scorer;
  std::vector<std::vector<double>> rows;
  /// Serial RowScorer oracle, indexed like `rows`.
  std::vector<double> oracle;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture f;
  f.data = testutil::MakePropertyDataset(seed);
  SafeParams params;
  params.seed = seed;
  SafeEngine engine(params);
  auto fit = engine.Fit(f.data);
  SAFE_CHECK(fit.ok()) << fit.status().ToString();
  f.plan = std::move(fit->plan);
  auto engineered = f.plan.Transform(f.data.x);
  SAFE_CHECK(engineered.ok()) << engineered.status().ToString();
  gbdt::GbdtParams gbdt_params;
  gbdt_params.seed = seed;
  gbdt_params.num_trees = 15;
  Dataset engineered_train{std::move(*engineered), f.data.y};
  auto booster = gbdt::Booster::Fit(engineered_train, nullptr, gbdt_params);
  SAFE_CHECK(booster.ok()) << booster.status().ToString();
  f.booster = std::move(*booster);
  auto scorer = serve::RowScorer::Create(f.plan, f.booster);
  SAFE_CHECK(scorer.ok()) << scorer.status().ToString();
  f.scorer = std::move(*scorer);
  for (size_t r = 0; r < f.data.num_rows(); ++r) {
    f.rows.push_back(f.data.x.Row(r));
  }
  f.oracle.resize(f.rows.size());
  for (size_t r = 0; r < f.rows.size(); ++r) {
    auto score = f.scorer.Score(f.rows[r]);
    SAFE_CHECK(score.ok()) << score.status().ToString();
    f.oracle[r] = *score;
  }
  return f;
}

std::unique_ptr<ScoringServer> MakeServer(const Fixture& f, size_t shards,
                                          size_t max_batch_rows,
                                          uint64_t max_wait_us,
                                          size_t queue_capacity = 1024) {
  ServerOptions options;
  options.num_shards = shards;
  options.queue_capacity = queue_capacity;
  options.batcher.max_batch_rows = max_batch_rows;
  options.batcher.max_wait_us = max_wait_us;
  auto server = ScoringServer::Create(f.plan, f.booster, options);
  SAFE_CHECK(server.ok()) << server.status().ToString();
  return std::move(*server);
}

bool SameBits(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(ServeServerTest, BitIdenticalAcrossShardCountsAndBatcherSettings) {
  Fixture f = MakeFixture(31);
  const size_t n = f.rows.size();
  struct BatcherCase {
    size_t max_rows;
    uint64_t max_wait_us;
  };
  // Immediate cuts (B=1), zero-wait time trigger, coalescing with a
  // short and with a long window: four very different cut-point
  // placements that must all be invisible in the outputs.
  const BatcherCase cases[] = {{1, 0}, {64, 0}, {4, 100}, {64, 500}};
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    for (const BatcherCase& bc : cases) {
      std::unique_ptr<ScoringServer> server =
          MakeServer(f, shards, bc.max_rows, bc.max_wait_us);
      // Four concurrent clients striped over the rows, so batches
      // actually coalesce rows from different requests.
      const size_t clients = 4;
      std::vector<double> got(n, kSentinel);
      std::vector<int> failures(clients, 0);
      std::vector<std::thread> threads;
      for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          for (size_t r = c; r < n; r += clients) {
            auto score = server->Score(r, f.rows[r]);
            if (!score.ok()) {
              failures[c] += 1;
              return;
            }
            got[r] = *score;
          }
        });
      }
      for (std::thread& thread : threads) thread.join();
      for (size_t c = 0; c < clients; ++c) {
        ASSERT_EQ(failures[c], 0)
            << "shards=" << shards << " B=" << bc.max_rows
            << " T=" << bc.max_wait_us << " client " << c;
      }
      for (size_t r = 0; r < n; ++r) {
        ASSERT_TRUE(SameBits(f.oracle[r], got[r]))
            << "shards=" << shards << " B=" << bc.max_rows
            << " T=" << bc.max_wait_us << " row " << r;
      }
      server->Stop();
      const ServerStats stats = server->stats();
      EXPECT_EQ(stats.accepted_requests, n);
      EXPECT_EQ(stats.completed_requests, n);
      EXPECT_EQ(stats.completed_rows, n);
      EXPECT_EQ(stats.rejected_requests, 0u);
    }
  }
}

TEST(ServeServerTest, BatchRequestsBitIdenticalAtAnyChunkSize) {
  Fixture f = MakeFixture(32);
  const size_t n = f.rows.size();
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    std::unique_ptr<ScoringServer> server = MakeServer(f, shards, 64, 50);
    // Chunk sizes straddling the batcher's B and the scorer's block
    // size, ragged tails included.
    for (const size_t chunk : {size_t{1}, size_t{3}, size_t{17}, size_t{129},
                               n}) {
      std::vector<double> got(n, kSentinel);
      for (size_t begin = 0; begin < n; begin += chunk) {
        const size_t end = std::min(n, begin + chunk);
        const std::vector<std::vector<double>> rows(
            f.rows.begin() + static_cast<long>(begin),
            f.rows.begin() + static_cast<long>(end));
        std::vector<double> out;
        ASSERT_TRUE(server->ScoreBatch(begin, rows, &out).ok());
        ASSERT_EQ(out.size(), rows.size());
        for (size_t i = 0; i < out.size(); ++i) got[begin + i] = out[i];
      }
      for (size_t r = 0; r < n; ++r) {
        ASSERT_TRUE(SameBits(f.oracle[r], got[r]))
            << "shards=" << shards << " chunk=" << chunk << " row " << r;
      }
    }
  }
}

TEST(ServeServerTest, ConcurrentMixedLoadNoLossNoDuplication) {
  Fixture f = MakeFixture(33);
  const size_t n = f.rows.size();
  for (const size_t shards : {size_t{2}, size_t{8}}) {
    std::unique_ptr<ScoringServer> server = MakeServer(f, shards, 16, 100);
    // 8 clients, each alternating single-row and 5-row batch requests
    // over its stripe. Every row index is owned by exactly one request,
    // so the sentinel-initialized `got` array is a sequence-numbered
    // echo check: a dropped request leaves its sentinel behind, a
    // misrouted response writes the wrong bits for its slot.
    const size_t clients = 8;
    std::vector<double> got(n, kSentinel);
    std::vector<int> failures(clients, 0);
    std::vector<std::thread> threads;
    std::atomic<uint64_t> issued_requests{0};
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        size_t r = c * (n / clients);
        const size_t stop = (c + 1 == clients) ? n : (c + 1) * (n / clients);
        bool single = (c % 2) == 0;
        while (r < stop) {
          if (single) {
            auto score = server->Score(r, f.rows[r]);
            if (!score.ok()) {
              failures[c] += 1;
              return;
            }
            got[r] = *score;
            // lint: mo-ok(standalone tally, read only after the clients join)
            issued_requests.fetch_add(1, std::memory_order_relaxed);
            r += 1;
          } else {
            const size_t end = std::min(stop, r + 5);
            const std::vector<std::vector<double>> rows(
                f.rows.begin() + static_cast<long>(r),
                f.rows.begin() + static_cast<long>(end));
            std::vector<double> out;
            if (!server->ScoreBatch(r, rows, &out).ok() ||
                out.size() != rows.size()) {
              failures[c] += 1;
              return;
            }
            for (size_t i = 0; i < out.size(); ++i) got[r + i] = out[i];
            // lint: mo-ok(standalone tally, read only after the clients join)
            issued_requests.fetch_add(1, std::memory_order_relaxed);
            r = end;
          }
          single = !single;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (size_t c = 0; c < clients; ++c) {
      ASSERT_EQ(failures[c], 0) << "shards=" << shards << " client " << c;
    }
    for (size_t r = 0; r < n; ++r) {
      ASSERT_TRUE(SameBits(f.oracle[r], got[r]))
          << "shards=" << shards << " row " << r;
    }
    server->Stop();
    const ServerStats stats = server->stats();
    EXPECT_EQ(stats.accepted_requests,
              // lint: mo-ok(clients joined above; final tally is visible)
              issued_requests.load(std::memory_order_relaxed));
    EXPECT_EQ(stats.completed_requests, stats.accepted_requests);
    EXPECT_EQ(stats.completed_rows, stats.accepted_rows);
    EXPECT_EQ(stats.accepted_rows, n);
    EXPECT_EQ(stats.rejected_requests, 0u);
    EXPECT_GT(stats.batches, 0u);
  }
}

TEST(ServeServerTest, SaturationRejectsCleanlyWithFullAccounting) {
  Fixture f = MakeFixture(34);
  const size_t n = f.rows.size();
  // A 2-slot queue on one shard whose batcher waits 1ms for co-riders:
  // while the worker coalesces, eight re-submitting clients overflow
  // admission, so rejections are the steady state rather than a timing
  // fluke. No retries — every rejection must be a clean kUnavailable
  // that leaves the caller's slot untouched.
  std::unique_ptr<ScoringServer> server =
      MakeServer(f, /*shards=*/1, /*max_batch_rows=*/128, /*max_wait_us=*/1000,
                 /*queue_capacity=*/2);
  const size_t clients = 8;
  const size_t per_client = 50;
  std::vector<std::vector<double>> got(clients,
                                       std::vector<double>(per_client,
                                                           kSentinel));
  std::vector<std::vector<size_t>> row_of(clients,
                                          std::vector<size_t>(per_client, 0));
  std::atomic<uint64_t> ok_count{0};
  std::atomic<uint64_t> rejected_count{0};
  std::atomic<uint64_t> wrong_status{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t i = 0; i < per_client; ++i) {
        const size_t r = (c * per_client + i) % n;
        row_of[c][i] = r;
        auto score = server->Score(r, f.rows[r]);
        if (score.ok()) {
          got[c][i] = *score;
          // lint: mo-ok(standalone tally, read only after the clients join)
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else if (score.status().code() == StatusCode::kUnavailable) {
          // lint: mo-ok(standalone tally, read only after the clients join)
          rejected_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          // lint: mo-ok(standalone tally, read only after the clients join)
          wrong_status.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  server->Stop();

  EXPECT_EQ(wrong_status.load(), 0u);
  const uint64_t submitted = clients * per_client;
  EXPECT_EQ(ok_count.load() + rejected_count.load(), submitted);
  // The tiny queue under 8 re-submitting clients must actually have
  // saturated — otherwise this test is not testing backpressure.
  EXPECT_GT(rejected_count.load(), 0u);
  EXPECT_GT(ok_count.load(), 0u);
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.accepted_requests, ok_count.load());
  EXPECT_EQ(stats.completed_requests, ok_count.load());
  EXPECT_EQ(stats.rejected_requests, rejected_count.load());
  // Echo check: accepted slots carry the oracle bits for their row,
  // rejected slots still carry the sentinel (output untouched).
  for (size_t c = 0; c < clients; ++c) {
    for (size_t i = 0; i < per_client; ++i) {
      const double value = got[c][i];
      if (SameBits(value, kSentinel)) continue;  // was rejected
      ASSERT_TRUE(SameBits(f.oracle[row_of[c][i]], value))
          << "client " << c << " request " << i;
    }
  }
}

TEST(ServeServerTest, StopDrainsAcceptedAndRejectsNew) {
  Fixture f = MakeFixture(35);
  const size_t n = f.rows.size();
  std::unique_ptr<ScoringServer> server = MakeServer(f, 2, 32, 200);
  // Clients submit in a loop while the main thread stops the server
  // mid-flight: every response is either correct or a clean
  // kUnavailable, and afterwards accepted == completed (the drain
  // leaves nothing behind).
  const size_t clients = 6;
  std::atomic<uint64_t> wrong_status{0};
  std::atomic<uint64_t> wrong_bits{0};
  std::atomic<bool> go_stop{false};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t i = 0; i < 400; ++i) {
        const size_t r = (c * 400 + i) % n;
        auto score = server->Score(r, f.rows[r]);
        if (score.ok()) {
          if (!SameBits(f.oracle[r], *score)) {
            // lint: mo-ok(standalone tally, read only after the clients join)
            wrong_bits.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (score.status().code() != StatusCode::kUnavailable) {
          // lint: mo-ok(standalone tally, read only after the clients join)
          wrong_status.fetch_add(1, std::memory_order_relaxed);
        }
        if (i == 50 && c == 0) go_stop.store(true);
      }
    });
  }
  while (!go_stop.load()) std::this_thread::yield();
  server->Stop();
  // Stop is idempotent and "after Stop" always means fully drained.
  server->Stop();
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(wrong_status.load(), 0u);
  EXPECT_EQ(wrong_bits.load(), 0u);
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.completed_requests, stats.accepted_requests);
  EXPECT_EQ(stats.completed_rows, stats.accepted_rows);

  // Deterministic rejection: a stopped server refuses new work with
  // kUnavailable and leaves the caller's buffers untouched.
  auto after = server->Score(0, f.rows[0]);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  std::vector<double> out{kSentinel};
  const Status batch_after =
      server->ScoreBatch(0, {f.rows[0]}, &out);
  EXPECT_EQ(batch_after.code(), StatusCode::kUnavailable);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(SameBits(out[0], kSentinel));
}

TEST(ServeServerTest, StopRacingSubmitNeverStrandsARequest) {
  // Targets the narrow shutdown window: a Submit passes its stopping_
  // check, Stop() flips stopping_, and an idle worker with an empty
  // queue evaluates its exit condition — all concurrently. If the
  // worker keyed its exit off stopping_ instead of queue.closed(), it
  // could exit before the Submit's push lands, stranding an accepted
  // request whose caller then blocks forever (this test would hang).
  // Churn the whole lifecycle many times with sparse traffic so workers
  // sit at the exit check with empty queues when Stop() races in.
  Fixture f = MakeFixture(37);
  const size_t n = f.rows.size();
#ifdef __SANITIZE_THREAD__
  const size_t lifecycles = 40;
#else
  const size_t lifecycles = 150;
#endif
  for (size_t iter = 0; iter < lifecycles; ++iter) {
    // B=1/T=0: the worker cuts every request immediately, so between
    // requests it is exactly at the exit-condition check.
    std::unique_ptr<ScoringServer> server = MakeServer(f, 2, 1, 0);
    const size_t clients = 3;
    std::atomic<uint64_t> wrong_status{0};
    std::atomic<uint64_t> wrong_bits{0};
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (size_t i = 0; i < 8; ++i) {
          const size_t r = (iter * 31 + c * 8 + i) % n;
          auto score = server->Score(r, f.rows[r]);
          if (score.ok()) {
            if (!SameBits(f.oracle[r], *score)) {
              // lint: mo-ok(standalone tally, read only after the clients join)
            wrong_bits.fetch_add(1, std::memory_order_relaxed);
            }
          } else if (score.status().code() != StatusCode::kUnavailable) {
            // lint: mo-ok(standalone tally, read only after the clients join)
            wrong_status.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    // No handshake: Stop() races the very first submissions, and on
    // later iterations lands anywhere inside the 24-request burst.
    server->Stop();
    for (std::thread& thread : threads) thread.join();
    ASSERT_EQ(wrong_status.load(), 0u) << "iteration " << iter;
    ASSERT_EQ(wrong_bits.load(), 0u) << "iteration " << iter;
    const ServerStats stats = server->stats();
    ASSERT_EQ(stats.completed_requests, stats.accepted_requests)
        << "iteration " << iter;
    ASSERT_EQ(stats.completed_rows, stats.accepted_rows)
        << "iteration " << iter;
  }
}

TEST(ServeServerTest, RoundRobinOverloadsAndEdgeCases) {
  Fixture f = MakeFixture(36);
  std::unique_ptr<ScoringServer> server = MakeServer(f, 2, 8, 50);
  EXPECT_EQ(server->num_shards(), 2u);
  EXPECT_EQ(server->num_inputs(), f.rows[0].size());

  // Route-free overloads round-robin across shards; results identical.
  for (size_t r = 0; r < std::min<size_t>(f.rows.size(), 32); ++r) {
    auto score = server->Score(f.rows[r]);
    ASSERT_TRUE(score.ok());
    EXPECT_TRUE(SameBits(f.oracle[r], *score)) << "row " << r;
  }
  std::vector<std::vector<double>> some(f.rows.begin(), f.rows.begin() + 7);
  std::vector<double> out;
  ASSERT_TRUE(server->ScoreBatch(some, &out).ok());
  for (size_t r = 0; r < out.size(); ++r) {
    EXPECT_TRUE(SameBits(f.oracle[r], out[r]));
  }

  // Empty batch: OK, empty output, nothing enqueued.
  std::vector<double> empty_out{kSentinel};
  ASSERT_TRUE(server->ScoreBatch(0, {}, &empty_out).ok());
  EXPECT_TRUE(empty_out.empty());

  // Wrong-width rows are InvalidArgument, not Unavailable.
  const std::vector<double> narrow(f.rows[0].size() - 1, 0.0);
  auto bad = server->Score(0, narrow);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  const Status bad_batch = server->ScoreBatch(0, {f.rows[0], narrow}, &out);
  EXPECT_EQ(bad_batch.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server->ScoreBatch(0, {f.rows[0]}, nullptr).code(),
            StatusCode::kInvalidArgument);

  // Zero-sized configuration fails Create outright.
  ServerOptions zero;
  zero.num_shards = 0;
  EXPECT_FALSE(ScoringServer::Create(f.plan, f.booster, zero).ok());
}

TEST(ServeServerTest, TelemetryServerSeriesDisjointFromLibrarySeries) {
#if SAFE_TELEMETRY_ENABLED
  Fixture f = MakeFixture(37);  // fixture oracle touches serve.latency_us
  const size_t n = f.rows.size();
  std::unique_ptr<ScoringServer> server = MakeServer(f, 2, 16, 100);

  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global()->Snapshot();
  // Server traffic only between the snapshots: singles + one batch.
  const size_t singles = std::min<size_t>(n, 64);
  for (size_t r = 0; r < singles; ++r) {
    ASSERT_TRUE(server->Score(r, f.rows[r]).ok());
  }
  std::vector<std::vector<double>> batch(f.rows.begin(),
                                         f.rows.begin() + 10);
  std::vector<double> out;
  ASSERT_TRUE(server->ScoreBatch(1, batch, &out).ok());
  server->Stop();
  const obs::MetricsSnapshot after = obs::MetricsRegistry::Global()->Snapshot();

  const auto counter = [](const obs::MetricsSnapshot& snap,
                          const std::string& name) -> uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  const auto histogram_count = [](const obs::MetricsSnapshot& snap,
                                  const std::string& name) -> uint64_t {
    const auto it = snap.histograms.find(name);
    return it == snap.histograms.end() ? 0 : it->second.count;
  };

  // The serve.server.* namespace carries exactly the server traffic...
  EXPECT_EQ(counter(after, "serve.server.requests") -
                counter(before, "serve.server.requests"),
            singles + 1);
  EXPECT_EQ(counter(after, "serve.server.rows") -
                counter(before, "serve.server.rows"),
            singles + batch.size());
  const uint64_t batches_delta = counter(after, "serve.server.batches") -
                                 counter(before, "serve.server.batches");
  EXPECT_GT(batches_delta, 0u);
  EXPECT_EQ(histogram_count(after, "serve.server.latency_us") -
                histogram_count(before, "serve.server.latency_us"),
            singles + 1);
  EXPECT_EQ(histogram_count(after, "serve.server.batch_fill") -
                histogram_count(before, "serve.server.batch_fill"),
            batches_delta);
  EXPECT_EQ(histogram_count(after, "serve.server.queue_depth") -
                histogram_count(before, "serve.server.queue_depth"),
            batches_delta);

  // ...and the library-call series are untouched by server traffic: the
  // shard workers score through BatchScorer blocks, never through the
  // RowScorer entry points that feed serve.latency_us and friends.
  for (const char* name : {"serve.latency_us", "serve.batch_latency_us"}) {
    EXPECT_EQ(histogram_count(after, name), histogram_count(before, name))
        << name;
  }
  for (const char* name : {"serve.rows", "serve.batch_rows"}) {
    EXPECT_EQ(counter(after, name), counter(before, name)) << name;
  }
#else
  GTEST_SKIP() << "SAFE_TELEMETRY=OFF build: metric registry is a no-op";
#endif
}

TEST(ServeServerTest, StatsWorkWithoutTelemetry) {
  // ServerStats are plain atomics, independent of SAFE_TELEMETRY — the
  // no-loss accounting must hold in every build mode.
  Fixture f = MakeFixture(38);
  std::unique_ptr<ScoringServer> server = MakeServer(f, 1, 4, 50);
  const size_t requests = std::min<size_t>(f.rows.size(), 40);
  for (size_t r = 0; r < requests; ++r) {
    ASSERT_TRUE(server->Score(r, f.rows[r]).ok());
  }
  server->Stop();
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.accepted_requests, requests);
  EXPECT_EQ(stats.completed_requests, requests);
  EXPECT_EQ(stats.accepted_rows, requests);
  EXPECT_EQ(stats.completed_rows, requests);
  EXPECT_GT(stats.batches, 0u);
}

}  // namespace
}  // namespace safe
