// Consistency suite for FeaturePlan's two execution paths: the batch
// Transform (training/scoring) and the single-row TransformRow (the
// paper's real-time inference path) must agree bit-for-bit — same value
// bits for every finite output, NaN exactly where the other path is NaN
// — for every registered operator, including missing-value propagation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/feature_plan.h"
#include "src/core/operators.h"
#include "src/dataframe/dataframe.h"

namespace safe {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Parent columns exercising the interesting regions of every operator:
/// negatives (log/sqrt undefined), zeros (division), NaNs (missing
/// propagation), large magnitudes, and enough distinct paired rows for
/// the fitted operators (krr needs >= 24).
DataFrame MakeParentFrame() {
  const size_t rows = 64;
  Rng rng(2024);
  std::vector<double> a(rows), b(rows), c(rows);
  for (size_t r = 0; r < rows; ++r) {
    a[r] = rng.NextDouble() * 8.0 - 4.0;
    b[r] = rng.NextDouble() * 3.0 - 1.0;
    c[r] = rng.NextDouble() * 100.0 - 50.0;
  }
  a[3] = 0.0;
  b[5] = 0.0;  // division by zero
  a[7] = kNaN;
  b[11] = kNaN;
  c[13] = kNaN;
  a[17] = kNaN;
  b[17] = kNaN;  // all-missing row
  c[19] = -0.0;
  DataFrame x;
  SAFE_CHECK(x.AddColumn(Column("a", std::move(a))).ok());
  SAFE_CHECK(x.AddColumn(Column("b", std::move(b))).ok());
  SAFE_CHECK(x.AddColumn(Column("c", std::move(c))).ok());
  return x;
}

TEST(PlanConsistencyTest, RowTransformMatchesBatchForEveryOperator) {
  const OperatorRegistry registry = OperatorRegistry::Default();
  const DataFrame x = MakeParentFrame();
  const std::vector<std::string> parent_names = {"a", "b", "c"};

  const std::vector<std::string> names = registry.Names();
  ASSERT_FALSE(names.empty());
  for (const std::string& op_name : names) {
    SCOPED_TRACE("operator " + op_name);
    auto op = registry.Find(op_name);
    ASSERT_TRUE(op.ok());
    const size_t arity = (*op)->arity();
    ASSERT_LE(arity, parent_names.size());

    std::vector<const std::vector<double>*> parents;
    std::vector<std::string> used_parents;
    for (size_t p = 0; p < arity; ++p) {
      parents.push_back(&x.column(p).values());
      used_parents.push_back(parent_names[p]);
    }
    auto params = (*op)->FitParams(parents);
    ASSERT_TRUE(params.ok()) << params.status().ToString();

    GeneratedFeature feature;
    feature.name = "gen_" + op_name;
    feature.op = op_name;
    feature.parents = used_parents;
    feature.params = *params;
    // Select the generated feature plus one original column so both slot
    // kinds flow through each path.
    auto plan = FeaturePlan::Create(parent_names, {feature},
                                    {feature.name, "a"});
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    auto batch = plan->Transform(x, registry);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ASSERT_EQ(batch->num_columns(), 2u);
    ASSERT_EQ(batch->num_rows(), x.num_rows());

    for (size_t r = 0; r < x.num_rows(); ++r) {
      auto row_out = plan->TransformRow(x.Row(r), registry);
      ASSERT_TRUE(row_out.ok()) << row_out.status().ToString();
      ASSERT_EQ(row_out->size(), 2u);
      for (size_t s = 0; s < 2; ++s) {
        const double batch_value = batch->column(s)[r];
        const double row_value = (*row_out)[s];
        if (std::isnan(batch_value) || std::isnan(row_value)) {
          // NaN payload bits are not part of the contract, but *whether*
          // the output is missing must agree exactly.
          EXPECT_TRUE(std::isnan(batch_value) && std::isnan(row_value))
              << "row " << r << " slot " << s << ": batch=" << batch_value
              << " row=" << row_value;
        } else {
          EXPECT_EQ(Bits(batch_value), Bits(row_value))
              << "row " << r << " slot " << s << ": batch=" << batch_value
              << " row=" << row_value;
        }
      }
    }
  }
}

TEST(PlanConsistencyTest, MissingPropagationAgreesOnAllNanRow) {
  // Row 17 is NaN in both binary parents: operators without
  // handles_missing must yield NaN through both paths; handles_missing
  // operators must yield the same (finite or not) value through both.
  const OperatorRegistry registry = OperatorRegistry::Default();
  const DataFrame x = MakeParentFrame();
  for (const std::string& op_name : registry.Names()) {
    auto op = registry.Find(op_name);
    ASSERT_TRUE(op.ok());
    if ((*op)->arity() != 2) continue;
    SCOPED_TRACE("operator " + op_name);
    std::vector<const std::vector<double>*> parents = {
        &x.column(0).values(), &x.column(1).values()};
    auto params = (*op)->FitParams(parents);
    ASSERT_TRUE(params.ok());
    GeneratedFeature feature;
    feature.name = "gen";
    feature.op = op_name;
    feature.parents = {"a", "b"};
    feature.params = *params;
    auto plan = FeaturePlan::Create({"a", "b", "c"}, {feature}, {"gen"});
    ASSERT_TRUE(plan.ok());
    auto batch = plan->Transform(x, registry);
    ASSERT_TRUE(batch.ok());
    auto row_out = plan->TransformRow(x.Row(17), registry);
    ASSERT_TRUE(row_out.ok());
    const double batch_value = batch->column(0)[17];
    const double row_value = (*row_out)[0];
    if (!(*op)->handles_missing()) {
      EXPECT_TRUE(std::isnan(batch_value));
    }
    EXPECT_TRUE((std::isnan(batch_value) && std::isnan(row_value)) ||
                Bits(batch_value) == Bits(row_value));
  }
}

}  // namespace
}  // namespace safe
