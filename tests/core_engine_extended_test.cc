// Extended engine coverage: non-arithmetic operator families flowing
// through the full pipeline, gamma control, ternary arity, and diagnostics
// contracts.

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/engine.h"
#include "src/data/synthetic.h"

namespace safe {
namespace {

data::SyntheticSpec Spec(uint64_t seed = 500) {
  data::SyntheticSpec spec;
  spec.num_rows = 1500;
  spec.num_features = 8;
  spec.num_informative = 4;
  spec.num_interactions = 3;
  spec.seed = seed;
  return spec;
}

SafeParams Quick() {
  SafeParams params;
  params.miner.num_trees = 10;
  params.ranker.num_trees = 10;
  params.seed = 3;
  return params;
}

TEST(EngineExtendedTest, GroupByOperatorsFlowThroughPipeline) {
  auto data = data::MakeSyntheticDataset(Spec());
  ASSERT_TRUE(data.ok());
  SafeParams params = Quick();
  params.operator_names = {"gbmean", "gbcount", "add"};
  SafeEngine engine(params);
  auto fit = engine.Fit(*data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  // The plan must replay on fresh rows including the fitted group tables.
  auto z = fit->plan.Transform(data->x);
  ASSERT_TRUE(z.ok()) << z.status().ToString();
  auto back = FeaturePlan::Deserialize(fit->plan.Serialize());
  ASSERT_TRUE(back.ok());
  auto z2 = back->Transform(data->x);
  ASSERT_TRUE(z2.ok());
}

TEST(EngineExtendedTest, TernaryConditionalGeneratesWithArityThree) {
  auto data = data::MakeSyntheticDataset(Spec(501));
  ASSERT_TRUE(data.ok());
  SafeParams params = Quick();
  params.operator_names = {"cond", "add"};
  params.max_arity = 3;
  params.miner.max_depth = 4;  // deep enough for 3-feature paths
  SafeEngine engine(params);
  auto fit = engine.Fit(*data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  bool has_ternary = false;
  for (const auto& feature : fit->plan.generated()) {
    if (feature.parents.size() == 3) {
      has_ternary = true;
      EXPECT_EQ(feature.op, "cond");
    }
  }
  // Conditional features may or may not survive selection; what matters
  // is that arity-3 combinations were processable end-to-end.
  auto z = fit->plan.Transform(data->x);
  ASSERT_TRUE(z.ok());
  (void)has_ternary;
}

TEST(EngineExtendedTest, GammaCapsCombinations) {
  auto data = data::MakeSyntheticDataset(Spec(502));
  ASSERT_TRUE(data.ok());
  SafeParams params = Quick();
  params.gamma = 3;
  SafeEngine engine(params);
  auto fit = engine.Fit(*data);
  ASSERT_TRUE(fit.ok());
  EXPECT_LE(fit->iterations[0].num_combinations, 3u);
}

TEST(EngineExtendedTest, MaxOutputCapRespectedExactly) {
  auto data = data::MakeSyntheticDataset(Spec(503));
  ASSERT_TRUE(data.ok());
  SafeParams params = Quick();
  params.max_output_features = 5;
  SafeEngine engine(params);
  auto fit = engine.Fit(*data);
  ASSERT_TRUE(fit.ok());
  EXPECT_LE(fit->plan.selected().size(), 5u);
}

TEST(EngineExtendedTest, StricterIvThresholdShrinksSurvivors) {
  auto data = data::MakeSyntheticDataset(Spec(504));
  ASSERT_TRUE(data.ok());
  size_t survivors_at[2] = {0, 0};
  const double thresholds[2] = {0.02, 0.5};
  for (int i = 0; i < 2; ++i) {
    SafeParams params = Quick();
    params.iv_threshold = thresholds[i];
    SafeEngine engine(params);
    auto fit = engine.Fit(*data);
    ASSERT_TRUE(fit.ok());
    survivors_at[i] = fit->iterations[0].num_after_iv;
  }
  EXPECT_GE(survivors_at[0], survivors_at[1]);
}

TEST(EngineExtendedTest, LooserPearsonKeepsMore) {
  auto data = data::MakeSyntheticDataset(Spec(505));
  ASSERT_TRUE(data.ok());
  size_t kept_at[2] = {0, 0};
  const double thresholds[2] = {0.99, 0.3};
  for (int i = 0; i < 2; ++i) {
    SafeParams params = Quick();
    params.pearson_threshold = thresholds[i];
    SafeEngine engine(params);
    auto fit = engine.Fit(*data);
    ASSERT_TRUE(fit.ok());
    kept_at[i] = fit->iterations[0].num_after_redundancy;
  }
  EXPECT_GE(kept_at[0], kept_at[1]);
}

TEST(EngineExtendedTest, DiagnosticsTimingsPositive) {
  auto data = data::MakeSyntheticDataset(Spec(506));
  ASSERT_TRUE(data.ok());
  SafeParams params = Quick();
  params.num_iterations = 2;
  SafeEngine engine(params);
  auto fit = engine.Fit(*data);
  ASSERT_TRUE(fit.ok());
  for (const auto& diag : fit->iterations) {
    EXPECT_GE(diag.seconds, 0.0);
  }
}

TEST(EngineExtendedTest, UnaryOnlyConfiguration) {
  auto data = data::MakeSyntheticDataset(Spec(507));
  ASSERT_TRUE(data.ok());
  SafeParams params = Quick();
  params.operator_names = {"square", "log", "sqrt", "zscore"};
  params.max_arity = 1;
  SafeEngine engine(params);
  auto fit = engine.Fit(*data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  for (const auto& feature : fit->plan.generated()) {
    EXPECT_EQ(feature.parents.size(), 1u);
  }
}

TEST(EngineExtendedTest, WideFrameAutoGammaIsBounded) {
  data::SyntheticSpec spec = Spec(508);
  spec.num_features = 120;
  spec.num_informative = 8;
  spec.num_redundant = 4;
  auto data = data::MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());
  SafeEngine engine(Quick());
  auto fit = engine.Fit(*data);
  ASSERT_TRUE(fit.ok());
  // auto gamma = min(4M, 1000); combinations never exceed it.
  EXPECT_LE(fit->iterations[0].num_combinations, 1000u);
}

}  // namespace
}  // namespace safe
