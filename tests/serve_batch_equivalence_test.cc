// Equivalence layer for the vectorized batch path (src/serve/
// batch_scorer.h): RowScorer::ScoreBatch — block transpose, block-wise
// opcode execution, packed-forest traversal — must be BITWISE identical
// to looping RowScorer::ScoreRow for every registered operator, for
// batch sizes {1, B-1, B, B+1, 4B, ragged tail}, on NaN-laden and
// constant columns, and under concurrent callers sharing one scorer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/core/engine.h"
#include "src/core/feature_plan.h"
#include "src/core/operators.h"
#include "src/dataframe/dataframe.h"
#include "src/gbdt/booster.h"
#include "src/obs/metrics.h"
#include "src/serve/batch_scorer.h"
#include "src/serve/scorer.h"
#include "tests/property_util.h"

namespace safe {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr size_t kB = serve::BatchScorer::kBlockRows;

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

::testing::AssertionResult SameBits(double expected, double actual) {
  if (std::isnan(expected) || std::isnan(actual)) {
    if (std::isnan(expected) && std::isnan(actual)) {
      return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure()
           << "missingness differs: expected=" << expected
           << " actual=" << actual;
  }
  if (Bits(expected) == Bits(actual)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "bits differ: expected=" << expected << " actual=" << actual;
}

/// The boundary-heavy sweep from the issue: a single row, one less than
/// a block, exactly a block, one more, several blocks, and the full
/// batch (whose tail is ragged whenever total % kB != 0).
std::vector<size_t> BatchSizes(size_t total) {
  std::vector<size_t> sizes;
  for (size_t s : {size_t{1}, kB - 1, kB, kB + 1, 4 * kB, total}) {
    if (s <= total) sizes.push_back(s);
  }
  return sizes;
}

/// Scores rows[0..size) through ScoreBatch and demands bitwise equality
/// with the per-row fused path.
void CheckBatchSweep(const serve::RowScorer& scorer,
                     const std::vector<std::vector<double>>& rows) {
  serve::RowScorer::Scratch scratch = scorer.MakeScratch();
  std::vector<double> expected(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    expected[r] = scorer.ScoreRow(rows[r].data(), &scratch);
  }
  for (const size_t size : BatchSizes(rows.size())) {
    SCOPED_TRACE("batch size " + std::to_string(size));
    const std::vector<std::vector<double>> batch(rows.begin(),
                                                 rows.begin() + size);
    std::vector<double> out;
    ASSERT_TRUE(scorer.ScoreBatch(batch, &out).ok());
    ASSERT_EQ(out.size(), size);
    for (size_t r = 0; r < size; ++r) {
      ASSERT_TRUE(SameBits(expected[r], out[r])) << "row " << r;
    }
  }
}

/// Training frame with negatives, zeros, NaNs, an all-missing row and
/// -0.0 (the serve_equivalence_test parent frame).
DataFrame MakeParentFrame() {
  const size_t rows = 64;
  Rng rng(2024);
  std::vector<double> a(rows), b(rows), c(rows);
  for (size_t r = 0; r < rows; ++r) {
    a[r] = rng.NextDouble() * 8.0 - 4.0;
    b[r] = rng.NextDouble() * 3.0 - 1.0;
    c[r] = rng.NextDouble() * 100.0 - 50.0;
  }
  a[3] = 0.0;
  b[5] = 0.0;
  a[7] = kNaN;
  b[11] = kNaN;
  c[13] = kNaN;
  a[17] = kNaN;
  b[17] = kNaN;
  c[19] = -0.0;
  DataFrame x;
  SAFE_CHECK(x.AddColumn(Column("a", std::move(a))).ok());
  SAFE_CHECK(x.AddColumn(Column("b", std::move(b))).ok());
  SAFE_CHECK(x.AddColumn(Column("c", std::move(c))).ok());
  return x;
}

/// Scoring rows in the training ranges plus NaNs — enough of them that
/// the full sweep (4 blocks + ragged tail) crosses block boundaries.
std::vector<std::vector<double>> MakeScoringRows(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows(n);
  for (auto& row : rows) {
    row = {rng.NextDouble() * 8.0 - 4.0, rng.NextDouble() * 3.0 - 1.0,
           rng.NextDouble() * 100.0 - 50.0};
    for (double& v : row) {
      if (rng.NextUint64Below(8) == 0) v = kNaN;
    }
  }
  // One all-missing row inside the first block and one in the tail.
  rows[5] = {kNaN, kNaN, kNaN};
  rows[n - 2] = {kNaN, kNaN, kNaN};
  return rows;
}

TEST(BatchEquivalenceTest, EveryRegisteredOperatorIsBitIdenticalInBatch) {
  const OperatorRegistry registry = OperatorRegistry::Default();
  const DataFrame x = MakeParentFrame();
  const std::vector<std::string> parent_names = {"a", "b", "c"};
  std::vector<double> labels(x.num_rows());
  for (size_t r = 0; r < labels.size(); ++r) labels[r] = (r % 2 == 0) ? 1.0 : 0.0;
  const auto y = std::make_shared<const std::vector<double>>(std::move(labels));

  const std::vector<std::vector<double>> scoring_rows =
      MakeScoringRows(77, 4 * kB + 41);

  for (const std::string& op_name : registry.Names()) {
    SCOPED_TRACE("operator " + op_name);
    auto op = registry.Find(op_name);
    ASSERT_TRUE(op.ok());
    const size_t arity = (*op)->arity();
    ASSERT_LE(arity, parent_names.size());

    std::vector<const std::vector<double>*> parents;
    std::vector<std::string> used_parents;
    for (size_t p = 0; p < arity; ++p) {
      parents.push_back(&x.column(p).values());
      used_parents.push_back(parent_names[p]);
    }
    auto params = (*op)->FitParams(parents);
    ASSERT_TRUE(params.ok()) << params.status().ToString();

    GeneratedFeature feature;
    feature.name = "gen_" + op_name;
    feature.op = op_name;
    feature.parents = used_parents;
    feature.params = *params;
    auto plan = FeaturePlan::Create(parent_names, {feature},
                                    {feature.name, "a", "b"});
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    // A small real booster over the plan's outputs, so the batch path
    // exercises this operator's panel through the forest too.
    auto engineered = plan->Transform(x, registry);
    ASSERT_TRUE(engineered.ok()) << engineered.status().ToString();
    gbdt::GbdtParams gbdt_params;
    gbdt_params.seed = 5;
    gbdt_params.num_trees = 5;
    Dataset engineered_train{std::move(*engineered), y};
    auto booster = gbdt::Booster::Fit(engineered_train, nullptr, gbdt_params);
    ASSERT_TRUE(booster.ok()) << booster.status().ToString();

    auto scorer = serve::RowScorer::Create(*plan, *booster, registry);
    ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
    CheckBatchSweep(*scorer, scoring_rows);
  }
}

/// Full SAFE pipeline on seeded property datasets (seeds divisible by 3
/// carry NaNs) with constant and mostly-missing columns appended — the
/// batch sweep must stay bit-identical end to end.
TEST(BatchEquivalenceTest, PropertyDatasetsAreBitIdenticalAcrossBatchSizes) {
  for (uint64_t seed : {3, 5, 9}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Dataset data = testutil::MakePropertyDataset(seed);
    testutil::AppendConstantColumn(&data, "const_col", -2.5);
    testutil::AppendMostlyMissingColumn(&data, "sparse_col", seed);

    SafeParams params;
    params.seed = seed;
    SafeEngine engine(params);
    auto fit = engine.Fit(data);
    ASSERT_TRUE(fit.ok()) << fit.status().ToString();

    auto engineered = fit->plan.Transform(data.x);
    ASSERT_TRUE(engineered.ok()) << engineered.status().ToString();
    gbdt::GbdtParams gbdt_params;
    gbdt_params.seed = seed;
    gbdt_params.num_trees = 20;
    Dataset engineered_train{std::move(*engineered), data.y};
    auto booster = gbdt::Booster::Fit(engineered_train, nullptr, gbdt_params);
    ASSERT_TRUE(booster.ok()) << booster.status().ToString();

    auto scorer = serve::RowScorer::Create(fit->plan, *booster);
    ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();

    std::vector<std::vector<double>> rows;
    rows.reserve(data.num_rows());
    for (size_t r = 0; r < data.num_rows(); ++r) rows.push_back(data.x.Row(r));
    CheckBatchSweep(*scorer, rows);
  }
}

TEST(BatchEquivalenceTest, EmptyBatchYieldsEmptyOutput) {
  Dataset data = testutil::MakePropertyDataset(4);
  SafeParams params;
  params.seed = 4;
  SafeEngine engine(params);
  auto fit = engine.Fit(data);
  ASSERT_TRUE(fit.ok());
  auto engineered = fit->plan.Transform(data.x);
  ASSERT_TRUE(engineered.ok());
  gbdt::GbdtParams gbdt_params;
  gbdt_params.seed = 4;
  gbdt_params.num_trees = 5;
  Dataset engineered_train{std::move(*engineered), data.y};
  auto booster = gbdt::Booster::Fit(engineered_train, nullptr, gbdt_params);
  ASSERT_TRUE(booster.ok());
  auto scorer = serve::RowScorer::Create(fit->plan, *booster);
  ASSERT_TRUE(scorer.ok());

  std::vector<double> out(7, -1.0);
  ASSERT_TRUE(scorer->ScoreBatch({}, &out).ok());
  EXPECT_TRUE(out.empty());

  // Width mismatches anywhere in the batch are rejected before scoring.
  std::vector<std::vector<double>> rows = {data.x.Row(0), data.x.Row(1)};
  rows[1].pop_back();
  EXPECT_FALSE(scorer->ScoreBatch(rows, &out).ok());
}

/// tsan hammer: one shared scorer, concurrent ScoreBatch callers on
/// overlapping row ranges plus interleaved per-row Score calls — every
/// output must still be bit-identical to the single-threaded result.
TEST(BatchEquivalenceTest, ConcurrentBatchCallersStayBitIdentical) {
  Dataset data = testutil::MakePropertyDataset(6);
  SafeParams params;
  params.seed = 6;
  SafeEngine engine(params);
  auto fit = engine.Fit(data);
  ASSERT_TRUE(fit.ok());
  auto engineered = fit->plan.Transform(data.x);
  ASSERT_TRUE(engineered.ok());
  gbdt::GbdtParams gbdt_params;
  gbdt_params.seed = 6;
  gbdt_params.num_trees = 10;
  Dataset engineered_train{std::move(*engineered), data.y};
  auto booster = gbdt::Booster::Fit(engineered_train, nullptr, gbdt_params);
  ASSERT_TRUE(booster.ok());
  auto scorer = serve::RowScorer::Create(fit->plan, *booster);
  ASSERT_TRUE(scorer.ok());

  std::vector<std::vector<double>> rows;
  for (size_t r = 0; r < data.num_rows(); ++r) rows.push_back(data.x.Row(r));
  std::vector<double> expected;
  ASSERT_TRUE(scorer->ScoreBatch(rows, &expected).ok());

  constexpr size_t kThreads = 8;
  std::vector<int> failures(kThreads, 0);
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Each thread scores a different prefix so block tails differ
        // across threads while the scorer and rows are shared.
        const size_t size = rows.size() - t * 3;
        const std::vector<std::vector<double>> batch(rows.begin(),
                                                     rows.begin() + size);
        for (int iter = 0; iter < 5; ++iter) {
          std::vector<double> out;
          if (!scorer->ScoreBatch(batch, &out).ok() || out.size() != size) {
            ++failures[t];
            continue;
          }
          for (size_t r = 0; r < size; ++r) {
            if (Bits(out[r]) != Bits(expected[r])) ++failures[t];
          }
          auto one = scorer->Score(rows[t]);
          if (!one.ok() || Bits(*one) != Bits(expected[t])) ++failures[t];
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

#if SAFE_TELEMETRY_ENABLED
/// ScoreBatch must record into serve.batch_latency_us / serve.batch_rows
/// only, and per-row Score into serve.latency_us only — the two series
/// stay disjoint so batch totals never pollute the per-row distribution
/// — and serve.batch_rows must record the true batch sizes.
TEST(ServeBenchTest, BatchAndPerRowTelemetrySeriesStayDisjoint) {
  Dataset data = testutil::MakePropertyDataset(8);
  SafeParams params;
  params.seed = 8;
  SafeEngine engine(params);
  auto fit = engine.Fit(data);
  ASSERT_TRUE(fit.ok());
  auto engineered = fit->plan.Transform(data.x);
  ASSERT_TRUE(engineered.ok());
  gbdt::GbdtParams gbdt_params;
  gbdt_params.seed = 8;
  gbdt_params.num_trees = 5;
  Dataset engineered_train{std::move(*engineered), data.y};
  auto booster = gbdt::Booster::Fit(engineered_train, nullptr, gbdt_params);
  ASSERT_TRUE(booster.ok());
  auto scorer = serve::RowScorer::Create(fit->plan, *booster);
  ASSERT_TRUE(scorer.ok());

  std::vector<std::vector<double>> rows;
  for (size_t r = 0; r < data.num_rows(); ++r) rows.push_back(data.x.Row(r));

  // Register all three series before snapshotting.
  std::vector<double> out;
  ASSERT_TRUE(scorer->Score(rows[0]).ok());
  ASSERT_TRUE(scorer->ScoreBatch({rows[0]}, &out).ok());

  const auto series = [](const obs::MetricsSnapshot& snapshot,
                         const std::string& name) {
    auto it = snapshot.histograms.find(name);
    SAFE_CHECK(it != snapshot.histograms.end()) << name;
    return it->second;
  };

  // Per-row scoring touches serve.latency_us and nothing batch-side.
  const obs::MetricsSnapshot before_rows =
      obs::MetricsRegistry::Global()->Snapshot();
  constexpr size_t kSingles = 17;
  for (size_t r = 0; r < kSingles; ++r) {
    ASSERT_TRUE(scorer->Score(rows[r % rows.size()]).ok());
  }
  const obs::MetricsSnapshot after_rows =
      obs::MetricsRegistry::Global()->Snapshot();
  EXPECT_EQ(series(after_rows, "serve.latency_us").count,
            series(before_rows, "serve.latency_us").count + kSingles);
  EXPECT_EQ(series(after_rows, "serve.batch_latency_us").count,
            series(before_rows, "serve.batch_latency_us").count);
  EXPECT_EQ(series(after_rows, "serve.batch_rows").count,
            series(before_rows, "serve.batch_rows").count);

  // Batch scoring records one observation per call with the true batch
  // size, and leaves the per-row series untouched.
  const std::vector<size_t> batch_sizes = {1, 3, kB, kB + 9};
  size_t total_rows = 0;
  for (const size_t size : batch_sizes) {
    ASSERT_LE(size, rows.size());
    const std::vector<std::vector<double>> batch(rows.begin(),
                                                 rows.begin() + size);
    ASSERT_TRUE(scorer->ScoreBatch(batch, &out).ok());
    total_rows += size;
  }
  const obs::MetricsSnapshot after_batches =
      obs::MetricsRegistry::Global()->Snapshot();
  EXPECT_EQ(series(after_batches, "serve.latency_us").count,
            series(after_rows, "serve.latency_us").count);
  EXPECT_EQ(series(after_batches, "serve.batch_latency_us").count,
            series(after_rows, "serve.batch_latency_us").count +
                batch_sizes.size());
  const obs::HistogramSnapshot rows_before =
      series(after_rows, "serve.batch_rows");
  const obs::HistogramSnapshot rows_after =
      series(after_batches, "serve.batch_rows");
  EXPECT_EQ(rows_after.count, rows_before.count + batch_sizes.size());
  // Batch sizes are recorded exactly: small integers are exact doubles,
  // so the histogram sum advances by exactly the rows scored.
  EXPECT_EQ(rows_after.sum - rows_before.sum,
            static_cast<double>(total_rows));
}
#endif  // SAFE_TELEMETRY_ENABLED

}  // namespace
}  // namespace safe
