// Tests of the exact (pre-sorted) tree method and its agreement with the
// histogram method.

#include "src/gbdt/exact_trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/data/synthetic.h"
#include "src/gbdt/booster.h"
#include "src/stats/auc.h"

namespace safe {
namespace gbdt {
namespace {

TEST(ExactTrainerTest, FindsExactMidpointThreshold) {
  // Values 0..9, step at 5: exact method puts the cut at 4.5 precisely.
  DataFrame f;
  std::vector<double> x(10);
  std::vector<double> grad(10);
  std::vector<double> hess(10, 0.25);
  std::vector<size_t> rows(10);
  for (size_t i = 0; i < 10; ++i) {
    x[i] = static_cast<double>(i);
    grad[i] = i < 5 ? 0.5 : -0.5;
    rows[i] = i;
  }
  ASSERT_TRUE(f.AddColumn(Column("x", x)).ok());
  GbdtParams params;
  params.max_depth = 1;
  ExactTreeTrainer trainer(&f, &params);
  RegressionTree tree = trainer.Train(grad, hess, rows, {0});
  ASSERT_EQ(tree.nodes().size(), 3u);
  EXPECT_DOUBLE_EQ(tree.nodes()[0].threshold, 4.5);
}

TEST(ExactTrainerTest, HandlesMissingValues) {
  DataFrame f;
  std::vector<double> x;
  std::vector<double> grad;
  std::vector<double> hess;
  std::vector<size_t> rows;
  for (size_t i = 0; i < 60; ++i) {
    // Missing rows carry positive gradient, present rows negative.
    const bool missing = i % 3 == 0;
    x.push_back(missing ? std::nan("") : static_cast<double>(i % 7));
    grad.push_back(missing ? 0.5 : -0.5);
    hess.push_back(0.25);
    rows.push_back(i);
  }
  ASSERT_TRUE(f.AddColumn(Column("x", x)).ok());
  GbdtParams params;
  params.max_depth = 2;
  ExactTreeTrainer trainer(&f, &params);
  RegressionTree tree = trainer.Train(grad, hess, rows, {0});
  ASSERT_GT(tree.nodes().size(), 1u);
  // Prediction for a missing row differs from a typical present row.
  const double miss_pred = tree.PredictRow({std::nan("")});
  const double present_pred = tree.PredictRow({3.0});
  EXPECT_NE(miss_pred, present_pred);
  // grad = +0.5 on missing rows -> boosting pushes their leaf negative.
  EXPECT_LT(miss_pred, present_pred);
}

TEST(ExactTrainerTest, PureGradientNodeStaysLeaf) {
  DataFrame f;
  ASSERT_TRUE(f.AddColumn(Column("x", {1.0, 2.0, 3.0, 4.0})).ok());
  std::vector<double> grad(4, 0.3);  // identical gradients: no gain
  std::vector<double> hess(4, 0.25);
  GbdtParams params;
  ExactTreeTrainer trainer(&f, &params);
  RegressionTree tree = trainer.Train(grad, hess, {0, 1, 2, 3}, {0});
  EXPECT_EQ(tree.nodes().size(), 1u);
}

TEST(ExactBoosterTest, ExactMethodLearns) {
  data::SyntheticSpec spec;
  spec.num_rows = 1500;
  spec.num_features = 8;
  spec.num_informative = 4;
  spec.num_interactions = 3;
  spec.seed = 77;
  auto data = data::MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());
  GbdtParams params;
  params.num_trees = 25;
  params.tree_method = TreeMethod::kExact;
  auto model = Booster::Fit(*data, nullptr, params);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto proba = model->PredictProba(data->x);
  ASSERT_TRUE(proba.ok());
  auto auc = Auc(*proba, data->labels());
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(*auc, 0.85);
}

TEST(ExactBoosterTest, ExactAndHistAgreeClosely) {
  data::SyntheticSpec spec;
  spec.num_rows = 2000;
  spec.num_features = 6;
  spec.num_informative = 3;
  spec.num_interactions = 2;
  spec.seed = 78;
  auto data = data::MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());

  double aucs[2] = {0.0, 0.0};
  const TreeMethod methods[2] = {TreeMethod::kHist, TreeMethod::kExact};
  for (int i = 0; i < 2; ++i) {
    GbdtParams params;
    params.num_trees = 20;
    params.tree_method = methods[i];
    auto model = Booster::Fit(*data, nullptr, params);
    ASSERT_TRUE(model.ok());
    auto proba = model->PredictProba(data->x);
    ASSERT_TRUE(proba.ok());
    aucs[i] = *Auc(*proba, data->labels());
  }
  // 256-bin quantization loses almost nothing: train AUCs within 2 pts.
  EXPECT_NEAR(aucs[0], aucs[1], 0.02);
}

TEST(ExactBoosterTest, ExactWithSubsamplingDeterministic) {
  data::SyntheticSpec spec;
  spec.num_rows = 800;
  spec.num_features = 5;
  spec.num_informative = 3;
  spec.num_interactions = 2;
  spec.seed = 79;
  auto data = data::MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());
  GbdtParams params;
  params.num_trees = 10;
  params.subsample = 0.7;
  params.colsample_bytree = 0.7;
  params.tree_method = TreeMethod::kExact;
  auto a = Booster::Fit(*data, nullptr, params);
  auto b = Booster::Fit(*data, nullptr, params);
  ASSERT_TRUE(a.ok() && b.ok());
  auto pa = a->PredictMargin(data->x);
  auto pb = b->PredictMargin(data->x);
  for (size_t i = 0; i < pa->size(); ++i) {
    ASSERT_DOUBLE_EQ((*pa)[i], (*pb)[i]);
  }
}

}  // namespace
}  // namespace gbdt
}  // namespace safe
