#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/result.h"

namespace safe {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IoError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

Status FailingOp() { return Status::IoError("disk gone"); }

Status UsesReturnNotOk() {
  SAFE_RETURN_NOT_OK(FailingOp());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kIoError);
}

Result<int> ProducesValue() { return 5; }

Result<int> UsesAssignOrReturn() {
  SAFE_ASSIGN_OR_RETURN(int v, ProducesValue());
  return v * 2;
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto r = UsesAssignOrReturn();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 10);
}

}  // namespace
}  // namespace safe
