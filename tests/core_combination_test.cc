#include "src/core/combination.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace safe {
namespace {

gbdt::TreePath MakePath(std::initializer_list<std::pair<int, double>> steps) {
  gbdt::TreePath path;
  for (const auto& [feature, threshold] : steps) {
    path.push_back(gbdt::PathStep{feature, threshold});
  }
  return path;
}

TEST(MineCombinationsTest, SinglePathEnumeratesSubsets) {
  std::vector<gbdt::TreePath> paths{
      MakePath({{0, 1.0}, {1, 2.0}, {2, 3.0}})};
  CombinationMinerOptions options;
  options.max_arity = 2;
  auto combos = MineCombinations(paths, options);
  // Subsets of {0,1,2} of size 1..2: 3 singles + 3 pairs.
  EXPECT_EQ(combos.size(), 6u);
}

TEST(MineCombinationsTest, ArityThreeIncludesTriples) {
  std::vector<gbdt::TreePath> paths{
      MakePath({{0, 1.0}, {1, 2.0}, {2, 3.0}})};
  CombinationMinerOptions options;
  options.max_arity = 3;
  auto combos = MineCombinations(paths, options);
  EXPECT_EQ(combos.size(), 7u);  // + the full triple
}

TEST(MineCombinationsTest, RepeatedFeatureOnPathMergesValues) {
  // Feature 0 splits twice on the same path.
  std::vector<gbdt::TreePath> paths{
      MakePath({{0, 1.0}, {0, 5.0}, {1, 2.0}})};
  CombinationMinerOptions options;
  auto combos = MineCombinations(paths, options);
  // Distinct features {0,1}: 2 singles + 1 pair.
  ASSERT_EQ(combos.size(), 3u);
  for (const auto& combo : combos) {
    if (combo.features == std::vector<int>{0}) {
      EXPECT_EQ(combo.split_values[0].size(), 2u);  // both thresholds kept
    }
  }
}

TEST(MineCombinationsTest, DuplicateAcrossPathsMergesValueSets) {
  std::vector<gbdt::TreePath> paths{
      MakePath({{0, 1.0}, {1, 2.0}}),
      MakePath({{0, 9.0}, {1, 2.0}}),
  };
  CombinationMinerOptions options;
  auto combos = MineCombinations(paths, options);
  ASSERT_EQ(combos.size(), 3u);  // {0}, {1}, {0,1} — deduped
  for (const auto& combo : combos) {
    if (combo.features == std::vector<int>{0, 1}) {
      EXPECT_EQ(combo.split_values[0], (std::vector<double>{1.0, 9.0}));
      EXPECT_EQ(combo.split_values[1], (std::vector<double>{2.0}));
    }
  }
}

TEST(MineCombinationsTest, CrossPathPairsNotGenerated) {
  // Features 0 and 1 never share a path: no {0,1} combination.
  std::vector<gbdt::TreePath> paths{
      MakePath({{0, 1.0}}),
      MakePath({{1, 2.0}}),
  };
  CombinationMinerOptions options;
  auto combos = MineCombinations(paths, options);
  for (const auto& combo : combos) {
    EXPECT_EQ(combo.features.size(), 1u);
  }
}

TEST(MineCombinationsTest, EmptyPathsYieldNothing) {
  CombinationMinerOptions options;
  EXPECT_TRUE(MineCombinations({}, options).empty());
}

TEST(MineCombinationsTest, CapRespected) {
  std::vector<gbdt::TreePath> paths;
  for (int f = 0; f < 50; ++f) {
    paths.push_back(MakePath({{f, 1.0}, {f + 50, 2.0}}));
  }
  CombinationMinerOptions options;
  options.max_combinations = 10;
  auto combos = MineCombinations(paths, options);
  EXPECT_LE(combos.size(), 10u);
}

TEST(RankCombinationsTest, InformativePairRanksFirst) {
  // Label = XOR of (f0 > 0.5) and (f1 > 0.5): neither single feature is
  // informative, the pair partition is perfectly informative.
  Rng rng(1);
  std::vector<double> f0(2000);
  std::vector<double> f1(2000);
  std::vector<double> noise(2000);
  std::vector<double> labels(2000);
  for (size_t i = 0; i < f0.size(); ++i) {
    f0[i] = rng.NextDouble();
    f1[i] = rng.NextDouble();
    noise[i] = rng.NextDouble();
    labels[i] = ((f0[i] > 0.5) != (f1[i] > 0.5)) ? 1.0 : 0.0;
  }
  DataFrame x;
  ASSERT_TRUE(x.AddColumn(Column("f0", f0)).ok());
  ASSERT_TRUE(x.AddColumn(Column("f1", f1)).ok());
  ASSERT_TRUE(x.AddColumn(Column("noise", noise)).ok());

  std::vector<FeatureCombination> combos(3);
  combos[0].features = {0};
  combos[0].split_values = {{0.5}};
  combos[1].features = {0, 1};
  combos[1].split_values = {{0.5}, {0.5}};
  combos[2].features = {0, 2};
  combos[2].split_values = {{0.5}, {0.5}};

  auto ranked = RankCombinations(combos, x, labels, 0);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].features, (std::vector<int>{0, 1}));
  EXPECT_GT(ranked[0].gain_ratio, 0.5);
  EXPECT_LT(ranked[1].gain_ratio, 0.1);
}

TEST(RankCombinationsTest, GammaTruncates) {
  Rng rng(2);
  std::vector<double> values(500);
  std::vector<double> labels(500);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = rng.NextDouble();
    labels[i] = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
  }
  DataFrame x;
  ASSERT_TRUE(x.AddColumn(Column("f0", values)).ok());
  std::vector<FeatureCombination> combos;
  for (double t : {0.2, 0.4, 0.6, 0.8}) {
    FeatureCombination combo;
    combo.features = {0};
    combo.split_values = {{t}};
    combos.push_back(combo);
  }
  auto ranked = RankCombinations(combos, x, labels, 2);
  EXPECT_EQ(ranked.size(), 2u);
  EXPECT_GE(ranked[0].gain_ratio, ranked[1].gain_ratio);
}

TEST(RankCombinationsTest, HandlesMissingValues) {
  std::vector<double> values{1.0, 2.0, std::nan(""), 4.0, std::nan(""),
                             6.0, 7.0, 8.0};
  std::vector<double> labels{0, 0, 1, 0, 1, 1, 1, 1};
  DataFrame x;
  ASSERT_TRUE(x.AddColumn(Column("f0", values)).ok());
  std::vector<FeatureCombination> combos(1);
  combos[0].features = {0};
  combos[0].split_values = {{4.0}};
  auto ranked = RankCombinations(combos, x, labels, 0);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_GE(ranked[0].gain_ratio, 0.0);
}

}  // namespace
}  // namespace safe
