#include "src/core/engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/data/synthetic.h"
#include "src/models/classifier.h"
#include "src/stats/auc.h"

namespace safe {
namespace {

data::SyntheticSpec InteractionSpec() {
  data::SyntheticSpec spec;
  spec.num_rows = 3000;
  spec.num_features = 10;
  spec.num_informative = 4;
  spec.num_interactions = 4;
  spec.num_redundant = 1;
  spec.linear_weight = 0.15;  // signal is mostly in the interactions
  spec.noise = 0.2;
  spec.seed = 777;
  return spec;
}

SafeParams QuickParams() {
  SafeParams params;
  params.miner.num_trees = 15;
  params.miner.max_depth = 3;
  params.ranker.num_trees = 15;
  params.ranker.max_depth = 3;
  params.seed = 5;
  return params;
}

TEST(SafeEngineTest, FitProducesPlanWithGeneratedFeatures) {
  auto split = data::MakeSyntheticSplit(InteractionSpec(), 2000, 0, 1000);
  ASSERT_TRUE(split.ok());
  SafeEngine engine(QuickParams());
  auto result = engine.Fit(split->train);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->plan.selected().empty());
  EXPECT_LE(result->plan.selected().size(),
            2 * split->train.x.num_columns());
  ASSERT_EQ(result->iterations.size(), 1u);
  const auto& diag = result->iterations[0];
  EXPECT_GT(diag.num_paths, 0u);
  EXPECT_GT(diag.num_combinations, 0u);
  EXPECT_GT(diag.num_generated, 0u);
  EXPECT_GE(diag.num_after_iv, diag.num_after_redundancy);
  EXPECT_GE(diag.num_after_redundancy, diag.num_selected);
}

TEST(SafeEngineTest, TransformedFeaturesImproveLinearModel) {
  // The headline claim: Ψ(X) beats X for a downstream learner on data
  // whose signal lives in feature interactions.
  auto split = data::MakeSyntheticSplit(InteractionSpec(), 2000, 0, 1000);
  ASSERT_TRUE(split.ok());

  SafeEngine engine(QuickParams());
  auto result = engine.Fit(split->train);
  ASSERT_TRUE(result.ok());

  auto train_z = result->plan.Transform(split->train.x);
  auto test_z = result->plan.Transform(split->test.x);
  ASSERT_TRUE(train_z.ok() && test_z.ok());

  auto eval = [&](const DataFrame& train_x, const DataFrame& test_x) {
    auto clf = models::MakeClassifier(
        models::ClassifierKind::kLogisticRegression, 3);
    Dataset train{train_x, split->train.y};
    EXPECT_TRUE(clf->Fit(train).ok());
    auto scores = clf->PredictScores(test_x);
    EXPECT_TRUE(scores.ok());
    return *Auc(*scores, split->test.labels());
  };

  const double auc_orig = eval(split->train.x, split->test.x);
  const double auc_safe = eval(*train_z, *test_z);
  EXPECT_GT(auc_safe, auc_orig + 0.01)
      << "orig=" << auc_orig << " safe=" << auc_safe;
}

TEST(SafeEngineTest, PlanRoundTripsThroughSerialization) {
  auto split = data::MakeSyntheticSplit(InteractionSpec(), 1500, 0, 500);
  ASSERT_TRUE(split.ok());
  SafeEngine engine(QuickParams());
  auto result = engine.Fit(split->train);
  ASSERT_TRUE(result.ok());

  auto back = FeaturePlan::Deserialize(result->plan.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  auto a = result->plan.Transform(split->test.x);
  auto b = back->Transform(split->test.x);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->num_columns(), b->num_columns());
  for (size_t r = 0; r < a->num_rows(); ++r) {
    for (size_t c = 0; c < a->num_columns(); ++c) {
      const double va = a->at(r, c);
      const double vb = b->at(r, c);
      if (std::isnan(va)) {
        EXPECT_TRUE(std::isnan(vb));
      } else {
        EXPECT_DOUBLE_EQ(va, vb);
      }
    }
  }
}

TEST(SafeEngineTest, RowTransformMatchesBatch) {
  auto split = data::MakeSyntheticSplit(InteractionSpec(), 1500, 0, 500);
  ASSERT_TRUE(split.ok());
  SafeEngine engine(QuickParams());
  auto result = engine.Fit(split->train);
  ASSERT_TRUE(result.ok());
  auto batch = result->plan.Transform(split->test.x);
  ASSERT_TRUE(batch.ok());
  for (size_t r = 0; r < 25; ++r) {
    auto row = result->plan.TransformRow(split->test.x.Row(r));
    ASSERT_TRUE(row.ok());
    for (size_t c = 0; c < row->size(); ++c) {
      const double expected = batch->at(r, c);
      if (std::isnan(expected)) {
        EXPECT_TRUE(std::isnan((*row)[c]));
      } else {
        EXPECT_DOUBLE_EQ((*row)[c], expected);
      }
    }
  }
}

TEST(SafeEngineTest, DeterministicForSameSeed) {
  auto split = data::MakeSyntheticSplit(InteractionSpec(), 1200, 0, 400);
  ASSERT_TRUE(split.ok());
  SafeEngine engine(QuickParams());
  auto a = engine.Fit(split->train);
  auto b = engine.Fit(split->train);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->plan.Serialize(), b->plan.Serialize());
}

TEST(SafeEngineTest, MultipleIterationsCompose) {
  auto split = data::MakeSyntheticSplit(InteractionSpec(), 1500, 0, 500);
  ASSERT_TRUE(split.ok());
  SafeParams params = QuickParams();
  params.num_iterations = 3;
  SafeEngine engine(params);
  auto result = engine.Fit(split->train);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->iterations.size(), 1u);
  EXPECT_LE(result->iterations.size(), 3u);
  // The plan still replays from the *original* schema.
  auto z = result->plan.Transform(split->test.x);
  ASSERT_TRUE(z.ok()) << z.status().ToString();
  EXPECT_EQ(z->num_columns(), result->plan.selected().size());
}

TEST(SafeEngineTest, TimeBudgetStopsIterating) {
  auto split = data::MakeSyntheticSplit(InteractionSpec(), 1500, 0, 500);
  ASSERT_TRUE(split.ok());
  SafeParams params = QuickParams();
  params.num_iterations = 50;
  params.time_budget_seconds = 0.0;  // expire immediately after iter 1
  SafeEngine engine(params);
  auto result = engine.Fit(split->train);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->iterations.size(), 1u);  // always runs at least one
}

TEST(SafeEngineTest, RandAndImpStrategiesRun) {
  auto split = data::MakeSyntheticSplit(InteractionSpec(), 1500, 0, 500);
  ASSERT_TRUE(split.ok());
  for (auto strategy : {MiningStrategy::kRandomPairs,
                        MiningStrategy::kSplitFeaturePairs,
                        MiningStrategy::kNonSplitPairs}) {
    SafeParams params = QuickParams();
    params.strategy = strategy;
    SafeEngine engine(params);
    auto result = engine.Fit(split->train);
    ASSERT_TRUE(result.ok()) << static_cast<int>(strategy);
    EXPECT_FALSE(result->plan.selected().empty());
  }
}

TEST(SafeEngineTest, ValidatesInput) {
  Dataset empty;
  SafeEngine engine(QuickParams());
  EXPECT_FALSE(engine.Fit(empty).ok());

  auto split = data::MakeSyntheticSplit(InteractionSpec(), 500, 0, 100);
  ASSERT_TRUE(split.ok());
  SafeParams params = QuickParams();
  params.num_iterations = 0;
  EXPECT_FALSE(SafeEngine(params).Fit(split->train).ok());
  params = QuickParams();
  params.operator_names = {"no_such_op"};
  EXPECT_FALSE(SafeEngine(params).Fit(split->train).ok());
  params = QuickParams();
  params.max_arity = 9;
  EXPECT_FALSE(SafeEngine(params).Fit(split->train).ok());
  params = QuickParams();
  params.iv_bins = 1;
  EXPECT_FALSE(SafeEngine(params).Fit(split->train).ok());
}

TEST(SafeEngineTest, UnaryOperatorsGenerate) {
  auto split = data::MakeSyntheticSplit(InteractionSpec(), 1200, 0, 400);
  ASSERT_TRUE(split.ok());
  SafeParams params = QuickParams();
  params.operator_names = {"square", "log", "add", "mul"};
  params.max_arity = 2;
  SafeEngine engine(params);
  auto result = engine.Fit(split->train);
  ASSERT_TRUE(result.ok());
  bool has_unary = false;
  for (const auto& feature : result->plan.generated()) {
    if (feature.parents.size() == 1) has_unary = true;
  }
  EXPECT_TRUE(has_unary);
}

TEST(SafeEngineTest, PlanPrunedToSelectedCone) {
  auto split = data::MakeSyntheticSplit(InteractionSpec(), 1500, 0, 500);
  ASSERT_TRUE(split.ok());
  SafeEngine engine(QuickParams());
  auto result = engine.Fit(split->train);
  ASSERT_TRUE(result.ok());
  // Every generated feature is an ancestor of some selected output.
  std::set<std::string> needed(result->plan.selected().begin(),
                               result->plan.selected().end());
  for (auto it = result->plan.generated().rbegin();
       it != result->plan.generated().rend(); ++it) {
    EXPECT_TRUE(needed.count(it->name)) << it->name;
    if (needed.count(it->name)) {
      for (const auto& parent : it->parents) needed.insert(parent);
    }
  }
}

TEST(SafeEngineTest, WorksWithValidationSet) {
  auto split = data::MakeSyntheticSplit(InteractionSpec(), 1500, 500, 500);
  ASSERT_TRUE(split.ok());
  SafeEngine engine(QuickParams());
  auto result = engine.Fit(split->train, &split->valid);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->plan.selected().empty());
}

}  // namespace
}  // namespace safe
