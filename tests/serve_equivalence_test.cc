// Equivalence suite for the serving path (src/serve/): the compiled
// FeaturePlan executor and the fused RowScorer must be bit-identical to
// the interpreted two-step path (FeaturePlan::Transform/TransformRow +
// Booster::PredictRowProba) — same value bits for every finite output,
// NaN exactly where the interpreted path is NaN — for every registered
// operator, for custom operators through the generic fallback, and on
// randomized property datasets with constant and mostly-missing columns.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/core/engine.h"
#include "src/core/feature_plan.h"
#include "src/core/operators.h"
#include "src/dataframe/dataframe.h"
#include "src/gbdt/booster.h"
#include "src/obs/report.h"
#include "src/serve/compiled_plan.h"
#include "src/serve/scorer.h"
#include "src/serve/serve_bench.h"
#include "tests/property_util.h"

namespace safe {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// NaN-aware bitwise agreement: missingness must match exactly; finite
/// values must match to the bit.
::testing::AssertionResult SameBits(double expected, double actual) {
  if (std::isnan(expected) || std::isnan(actual)) {
    if (std::isnan(expected) && std::isnan(actual)) {
      return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure()
           << "missingness differs: expected=" << expected
           << " actual=" << actual;
  }
  if (Bits(expected) == Bits(actual)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "bits differ: expected=" << expected << " actual=" << actual;
}

/// Same parent frame as core_plan_consistency_test: negatives, zeros,
/// NaNs, an all-missing row, -0.0, and enough rows for fitted operators.
DataFrame MakeParentFrame() {
  const size_t rows = 64;
  Rng rng(2024);
  std::vector<double> a(rows), b(rows), c(rows);
  for (size_t r = 0; r < rows; ++r) {
    a[r] = rng.NextDouble() * 8.0 - 4.0;
    b[r] = rng.NextDouble() * 3.0 - 1.0;
    c[r] = rng.NextDouble() * 100.0 - 50.0;
  }
  a[3] = 0.0;
  b[5] = 0.0;
  a[7] = kNaN;
  b[11] = kNaN;
  c[13] = kNaN;
  a[17] = kNaN;
  b[17] = kNaN;
  c[19] = -0.0;
  DataFrame x;
  SAFE_CHECK(x.AddColumn(Column("a", std::move(a))).ok());
  SAFE_CHECK(x.AddColumn(Column("b", std::move(b))).ok());
  SAFE_CHECK(x.AddColumn(Column("c", std::move(c))).ok());
  return x;
}

TEST(CompiledPlanTest, MatchesInterpretedPathForEveryRegisteredOperator) {
  const OperatorRegistry registry = OperatorRegistry::Default();
  const DataFrame x = MakeParentFrame();
  const std::vector<std::string> parent_names = {"a", "b", "c"};

  const std::vector<std::string> names = registry.Names();
  // The serving compiler must specialize the whole built-in vocabulary.
  ASSERT_GE(names.size(), 22u);
  for (const std::string& op_name : names) {
    SCOPED_TRACE("operator " + op_name);
    auto op = registry.Find(op_name);
    ASSERT_TRUE(op.ok());
    const size_t arity = (*op)->arity();
    ASSERT_LE(arity, parent_names.size());

    std::vector<const std::vector<double>*> parents;
    std::vector<std::string> used_parents;
    for (size_t p = 0; p < arity; ++p) {
      parents.push_back(&x.column(p).values());
      used_parents.push_back(parent_names[p]);
    }
    auto params = (*op)->FitParams(parents);
    ASSERT_TRUE(params.ok()) << params.status().ToString();

    GeneratedFeature feature;
    feature.name = "gen_" + op_name;
    feature.op = op_name;
    feature.parents = used_parents;
    feature.params = *params;
    // Select the generated feature plus one original column so both slot
    // kinds flow through the compiled program.
    auto plan = FeaturePlan::Create(parent_names, {feature},
                                    {feature.name, "a"});
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();

    auto compiled = serve::CompiledPlan::Compile(*plan, registry);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    // Every built-in operator must get a specialized opcode, not the
    // virtual-dispatch fallback.
    for (const serve::Instruction& inst : compiled->instructions()) {
      EXPECT_NE(inst.code, serve::OpCode::kGeneric) << "operator " << op_name;
    }

    for (size_t r = 0; r < x.num_rows(); ++r) {
      const std::vector<double> row = x.Row(r);
      auto expected = plan->TransformRow(row, registry);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      auto actual = compiled->ExecuteRow(row);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      ASSERT_EQ(actual->size(), expected->size());
      for (size_t s = 0; s < expected->size(); ++s) {
        EXPECT_TRUE(SameBits((*expected)[s], (*actual)[s]))
            << "row " << r << " slot " << s;
      }
    }
  }
}

TEST(CompiledPlanTest, ChainedFeaturesUseGeneratedSlotsAsParents) {
  // gen2 consumes gen1's slot, so the compiled program must evaluate in
  // creation order and route intermediate results through scratch.
  const OperatorRegistry registry = OperatorRegistry::Default();
  const DataFrame x = MakeParentFrame();
  GeneratedFeature gen1;
  gen1.name = "gen1";
  gen1.op = "mul";
  gen1.parents = {"a", "b"};
  GeneratedFeature gen2;
  gen2.name = "gen2";
  gen2.op = "add";
  gen2.parents = {"gen1", "c"};
  auto plan = FeaturePlan::Create({"a", "b", "c"}, {gen1, gen2},
                                  {"gen2", "gen1", "b"});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto compiled = serve::CompiledPlan::Compile(*plan, registry);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  for (size_t r = 0; r < x.num_rows(); ++r) {
    const std::vector<double> row = x.Row(r);
    auto expected = plan->TransformRow(row, registry);
    ASSERT_TRUE(expected.ok());
    auto actual = compiled->ExecuteRow(row);
    ASSERT_TRUE(actual.ok());
    ASSERT_EQ(actual->size(), expected->size());
    for (size_t s = 0; s < expected->size(); ++s) {
      EXPECT_TRUE(SameBits((*expected)[s], (*actual)[s]))
          << "row " << r << " slot " << s;
    }
  }
}

/// Custom operator unknown to the compiler's opcode table: must compile
/// through the generic fallback and still agree with the interpreter.
class Clamp01Op final : public Operator {
 public:
  std::string name() const override { return "clamp01"; }
  size_t arity() const override { return 1; }
  Result<std::vector<double>> FitParams(
      const std::vector<const std::vector<double>*>&) const override {
    return std::vector<double>{};
  }
  double Apply(const double* inputs,
               const std::vector<double>&) const override {
    if (inputs[0] < 0.0) return 0.0;
    if (inputs[0] > 1.0) return 1.0;
    return inputs[0];
  }
};

TEST(CompiledPlanTest, GenericFallbackHandlesCustomOperators) {
  OperatorRegistry registry = OperatorRegistry::Default();
  ASSERT_TRUE(registry.Register(std::make_shared<Clamp01Op>()).ok());
  const DataFrame x = MakeParentFrame();
  GeneratedFeature feature;
  feature.name = "gen_clamp";
  feature.op = "clamp01";
  feature.parents = {"b"};
  auto plan =
      FeaturePlan::Create({"a", "b", "c"}, {feature}, {"gen_clamp", "c"});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto compiled = serve::CompiledPlan::Compile(*plan, registry);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ASSERT_EQ(compiled->instructions().size(), 1u);
  EXPECT_EQ(compiled->instructions()[0].code, serve::OpCode::kGeneric);
  for (size_t r = 0; r < x.num_rows(); ++r) {
    const std::vector<double> row = x.Row(r);
    auto expected = plan->TransformRow(row, registry);
    ASSERT_TRUE(expected.ok());
    auto actual = compiled->ExecuteRow(row);
    ASSERT_TRUE(actual.ok());
    for (size_t s = 0; s < expected->size(); ++s) {
      EXPECT_TRUE(SameBits((*expected)[s], (*actual)[s]))
          << "row " << r << " slot " << s;
    }
  }
}

TEST(CompiledPlanTest, RejectsWrongRowWidth) {
  auto plan = FeaturePlan::Create({"a", "b"}, {}, {"a"});
  ASSERT_TRUE(plan.ok());
  auto compiled = serve::CompiledPlan::Compile(*plan);
  ASSERT_TRUE(compiled.ok());
  EXPECT_FALSE(compiled->ExecuteRow({1.0}).ok());
  EXPECT_FALSE(compiled->ExecuteRow({1.0, 2.0, 3.0}).ok());
  EXPECT_TRUE(compiled->ExecuteRow({1.0, 2.0}).ok());
}

/// Full pipeline on a seed-randomized dataset: SAFE fit, GBDT on the
/// engineered features, then every row must score bit-identically
/// through the fused path.
void CheckFusedPipeline(uint64_t seed) {
  Dataset data = testutil::MakePropertyDataset(seed);
  testutil::AppendConstantColumn(&data, "const_col", 3.25);
  testutil::AppendMostlyMissingColumn(&data, "sparse_col", seed);

  SafeParams params;
  params.seed = seed;
  SafeEngine engine(params);
  auto fit = engine.Fit(data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const FeaturePlan& plan = fit->plan;

  auto engineered = plan.Transform(data.x);
  ASSERT_TRUE(engineered.ok()) << engineered.status().ToString();
  gbdt::GbdtParams gbdt_params;
  gbdt_params.seed = seed;
  gbdt_params.num_trees = 20;
  Dataset engineered_train{std::move(*engineered), data.y};
  auto booster = gbdt::Booster::Fit(engineered_train, nullptr, gbdt_params);
  ASSERT_TRUE(booster.ok()) << booster.status().ToString();

  auto scorer = serve::RowScorer::Create(plan, *booster);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  EXPECT_EQ(scorer->num_inputs(), data.x.num_columns());
  EXPECT_EQ(scorer->num_features(), plan.selected().size());

  serve::RowScorer::Scratch scratch = scorer->MakeScratch();
  for (size_t r = 0; r < data.num_rows(); ++r) {
    const std::vector<double> row = data.x.Row(r);
    auto transformed = plan.TransformRow(row);
    ASSERT_TRUE(transformed.ok()) << transformed.status().ToString();
    const double naive_margin = booster->PredictRowMargin(*transformed);
    const double naive_proba = booster->PredictRowProba(*transformed);
    EXPECT_TRUE(
        SameBits(naive_margin, scorer->ScoreRowMargin(row.data(), &scratch)))
        << "margin, row " << r;
    EXPECT_TRUE(SameBits(naive_proba, scorer->ScoreRow(row.data(), &scratch)))
        << "proba, row " << r;
    // The checked convenience API must agree with the unchecked core.
    auto checked = scorer->Score(row);
    ASSERT_TRUE(checked.ok()) << checked.status().ToString();
    EXPECT_TRUE(SameBits(naive_proba, *checked)) << "Score(), row " << r;
  }

  // ScoreBatch over all rows must reproduce the per-row outputs.
  std::vector<std::vector<double>> rows;
  rows.reserve(data.num_rows());
  for (size_t r = 0; r < data.num_rows(); ++r) rows.push_back(data.x.Row(r));
  std::vector<double> batch_out;
  ASSERT_TRUE(scorer->ScoreBatch(rows, &batch_out).ok());
  ASSERT_EQ(batch_out.size(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_TRUE(
        SameBits(scorer->ScoreRow(rows[r].data(), &scratch), batch_out[r]))
        << "batch row " << r;
  }

#if SAFE_TELEMETRY_ENABLED
  // ScoreBatch must surface its batch shape in telemetry: the
  // serve.batch_rows and serve.batch_latency_us histograms land in the
  // global registry, so any RunReport (including the bench harness's)
  // picks them up via CaptureTelemetry.
  obs::RunReport report("serve_equivalence_test");
  report.CaptureTelemetry();
  EXPECT_EQ(report.metrics().histograms.count("serve.batch_rows"), 1u);
  EXPECT_EQ(report.metrics().histograms.count("serve.batch_latency_us"), 1u);
  const obs::JsonValue doc = report.ToJson();
  const obs::JsonValue* metrics = doc.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  const obs::JsonValue* histograms = metrics->Find("histograms");
  ASSERT_NE(histograms, nullptr);
  EXPECT_NE(histograms->Find("serve.batch_rows"), nullptr);
  EXPECT_NE(histograms->Find("serve.batch_latency_us"), nullptr);
#endif
}

TEST(RowScorerTest, FusedPipelineMatchesNaiveOnPropertyDatasets) {
  for (uint64_t seed : {1, 2, 3, 4, 5, 6}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    CheckFusedPipeline(seed);
  }
}

TEST(RowScorerTest, RejectsMismatchedBoosterAndRow) {
  Dataset data = testutil::MakePropertyDataset(11);
  SafeParams params;
  params.seed = 11;
  SafeEngine engine(params);
  auto fit = engine.Fit(data);
  ASSERT_TRUE(fit.ok());

  // A booster trained on the ORIGINAL features disagrees with the plan's
  // output width, so Create must refuse to fuse them.
  gbdt::GbdtParams gbdt_params;
  gbdt_params.seed = 11;
  gbdt_params.num_trees = 5;
  auto raw_booster = gbdt::Booster::Fit(data, nullptr, gbdt_params);
  ASSERT_TRUE(raw_booster.ok());
  if (raw_booster->num_features() != fit->plan.selected().size()) {
    EXPECT_FALSE(serve::RowScorer::Create(fit->plan, *raw_booster).ok());
  }

  auto engineered = fit->plan.Transform(data.x);
  ASSERT_TRUE(engineered.ok());
  Dataset engineered_train{std::move(*engineered), data.y};
  auto booster = gbdt::Booster::Fit(engineered_train, nullptr, gbdt_params);
  ASSERT_TRUE(booster.ok());
  auto scorer = serve::RowScorer::Create(fit->plan, *booster);
  ASSERT_TRUE(scorer.ok()) << scorer.status().ToString();
  // Checked APIs must reject malformed rows instead of reading past them.
  std::vector<double> short_row(data.x.num_columns() - 1, 0.0);
  EXPECT_FALSE(scorer->Score(short_row).ok());
  EXPECT_FALSE(scorer->ScoreMargin(short_row).ok());
  std::vector<double> out;
  EXPECT_FALSE(scorer->ScoreBatch({short_row}, &out).ok());
  EXPECT_FALSE(scorer->ScoreBatch({}, nullptr).ok());
}

TEST(ServeBenchTest, GateBaselineIsReadable) {
  EXPECT_FALSE(serve::ReadServingGate("/nonexistent/serving.json").ok());

  // A baseline in the committed format parses all three gate knobs; the
  // overhead budget and batch floor stay optional (0 = disabled) for
  // older baselines.
  const std::string path = ::testing::TempDir() + "/serving_gate.json";
  {
    std::ofstream out(path);
    out << R"({"min_speedup": 2.0, "min_batch_speedup": 3.5,)"
        << R"( "max_recorder_overhead_pct": 3.0})";
  }
  auto gate = serve::ReadServingGate(path);
  ASSERT_TRUE(gate.ok()) << gate.status().ToString();
  EXPECT_EQ(gate->min_speedup, 2.0);
  EXPECT_EQ(gate->min_batch_speedup, 3.5);
  EXPECT_EQ(gate->max_recorder_overhead_pct, 3.0);
  {
    std::ofstream out(path);
    out << R"({"min_speedup": 1.5})";
  }
  auto legacy = serve::ReadServingGate(path);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ(legacy->min_speedup, 1.5);
  EXPECT_EQ(legacy->min_batch_speedup, 0.0);
  EXPECT_EQ(legacy->max_recorder_overhead_pct, 0.0);
  {
    std::ofstream out(path);
    out << R"({"min_speedup": 1.5, "min_batch_speedup": "high"})";
  }
  EXPECT_FALSE(serve::ReadServingGate(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace safe
