// Flight-recorder suite (src/obs/flight_recorder.h + trace_export.h):
// concurrent no-loss recording below capacity, deterministic drop
// counters on overflow, armed/disarmed macro behaviour, sampling-rate
// exactness, thread-pool worker labeling, and Chrome-trace export that
// parses back through obs::JsonValue with well-nested B/E pairs per
// track. The exporter tests on hand-built timelines run in both
// telemetry modes; everything touching the real recorder is gated on
// SAFE_TELEMETRY_ENABLED, with a stub-contract suite for OFF builds.

#include "src/obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/obs/json.h"
#include "src/obs/trace_export.h"

namespace safe {
namespace obs {
namespace {

TraceEvent MakeTestEvent(const char* name, TraceEventType type,
                         uint64_t ts_ns, double value = 0.0) {
  TraceEvent event;
  event.ts_ns = ts_ns;
  event.name = name;
  event.value = value;
  event.type = type;
  return event;
}

/// Walks a parsed Chrome trace document and checks, per tid, that "E"
/// records only ever close a previously opened "B" and that every "B"
/// is eventually closed. Returns per-tid completed-span counts.
std::map<uint64_t, size_t> CheckWellNested(const JsonValue& doc) {
  std::map<uint64_t, size_t> completed;
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || events->type() != JsonValue::Type::kArray) {
    ADD_FAILURE() << "document has no traceEvents array";
    return completed;
  }
  std::map<uint64_t, std::vector<std::string>> open;
  for (const JsonValue& record : events->items()) {
    const JsonValue* ph = record.Find("ph");
    const JsonValue* tid = record.Find("tid");
    const JsonValue* name = record.Find("name");
    if (ph == nullptr || tid == nullptr || name == nullptr) {
      ADD_FAILURE() << "record missing ph/tid/name: "
                    << record.Serialize(/*indent=*/-1);
      continue;
    }
    const uint64_t t = static_cast<uint64_t>(tid->number_value());
    const std::string& phase = ph->string_value();
    if (phase == "B") {
      open[t].push_back(name->string_value());
    } else if (phase == "E") {
      if (open[t].empty()) {
        ADD_FAILURE() << "E for '" << name->string_value()
                      << "' without open B, tid " << t;
        continue;
      }
      EXPECT_EQ(open[t].back(), name->string_value())
          << "mis-nested close, tid " << t;
      open[t].pop_back();
      ++completed[t];
    }
  }
  for (const auto& [t, stack] : open) {
    EXPECT_TRUE(stack.empty()) << stack.size() << " unclosed B, tid " << t;
  }
  return completed;
}

// --- Exporter on hand-built timelines: valid in BOTH telemetry modes
// (ThreadTimeline and ChromeTraceJson are never stubbed out). ---

TEST(ChromeTraceExportTest, HandBuiltTimelineRoundTripsThroughJsonParse) {
  ThreadTimeline timeline;
  timeline.thread_index = 7;
  timeline.label = "pool0.worker3";
  timeline.events.push_back(
      MakeTestEvent("outer", TraceEventType::kBegin, 1000));
  timeline.events.push_back(
      MakeTestEvent("inner", TraceEventType::kBegin, 2000));
  timeline.events.push_back(
      MakeTestEvent("tick", TraceEventType::kInstant, 2500));
  timeline.events.push_back(
      MakeTestEvent("depth", TraceEventType::kCounter, 3000, 4.0));
  timeline.events.push_back(MakeTestEvent("inner", TraceEventType::kEnd, 4000));
  timeline.events.push_back(MakeTestEvent("outer", TraceEventType::kEnd, 5000));

  const JsonValue doc = ChromeTraceJson({timeline});
  // Serialize compact and parse back: the exporter must emit a document
  // our own parser accepts, or the CI trace artifact is useless.
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(doc.Serialize(/*indent=*/-1), &parsed, &error))
      << error;
  EXPECT_EQ(parsed, doc);

  const JsonValue* events = parsed.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 1 metadata + 6 events.
  ASSERT_EQ(events->items().size(), 7u);

  // Metadata record names the track after the timeline label.
  const JsonValue& meta = events->items()[0];
  EXPECT_EQ(meta.Find("ph")->string_value(), "M");
  EXPECT_EQ(meta.Find("name")->string_value(), "thread_name");
  EXPECT_EQ(meta.Find("args")->Find("name")->string_value(), "pool0.worker3");
  EXPECT_EQ(meta.Find("tid")->number_value(), 7.0);

  // Timestamps are microseconds: 1000 ns -> 1 us.
  const JsonValue& begin = events->items()[1];
  EXPECT_EQ(begin.Find("ph")->string_value(), "B");
  EXPECT_EQ(begin.Find("ts")->number_value(), 1.0);

  // Instants are thread-scoped; counters carry their value in args.
  const JsonValue& instant = events->items()[3];
  EXPECT_EQ(instant.Find("ph")->string_value(), "i");
  EXPECT_EQ(instant.Find("s")->string_value(), "t");
  const JsonValue& counter = events->items()[4];
  EXPECT_EQ(counter.Find("ph")->string_value(), "C");
  EXPECT_EQ(counter.Find("args")->Find("value")->number_value(), 4.0);

  const auto completed = CheckWellNested(parsed);
  EXPECT_EQ(completed.at(7), 2u);
}

TEST(ChromeTraceExportTest, RepairsDropDamagedSpans) {
  // An orphan end (its begin was dropped) followed by a begin whose end
  // was dropped: the exporter must skip the former and close the latter
  // synthetically at the track's last timestamp.
  ThreadTimeline timeline;
  timeline.thread_index = 0;
  timeline.dropped = 2;
  timeline.events.push_back(
      MakeTestEvent("lost_begin", TraceEventType::kEnd, 1000));
  timeline.events.push_back(
      MakeTestEvent("lost_end", TraceEventType::kBegin, 2000));
  timeline.events.push_back(
      MakeTestEvent("tick", TraceEventType::kInstant, 9000));

  const JsonValue doc = ChromeTraceJson({timeline});
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // metadata + B + i + synthetic E; the orphan E is gone.
  ASSERT_EQ(events->items().size(), 4u);
  const JsonValue& synthetic = events->items()[3];
  EXPECT_EQ(synthetic.Find("ph")->string_value(), "E");
  EXPECT_EQ(synthetic.Find("name")->string_value(), "lost_end");
  EXPECT_EQ(synthetic.Find("ts")->number_value(), 9.0);
  CheckWellNested(doc);
}

TEST(ChromeTraceExportTest, UnlabeledTimelineGetsIndexTrackName) {
  ThreadTimeline timeline;
  timeline.thread_index = 3;
  const JsonValue doc = ChromeTraceJson({timeline});
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_EQ(events->items().size(), 1u);
  EXPECT_EQ(events->items()[0].Find("args")->Find("name")->string_value(),
            "thread3");
}

TEST(ChromeTraceExportTest, SummaryTotalsEventsAndDrops) {
  ThreadTimeline a;
  a.thread_index = 0;
  a.label = "main";
  a.dropped = 3;
  a.events.push_back(MakeTestEvent("x", TraceEventType::kInstant, 100));
  ThreadTimeline b;
  b.thread_index = 1;
  b.events.push_back(MakeTestEvent("y", TraceEventType::kInstant, 200));
  b.events.push_back(MakeTestEvent("z", TraceEventType::kInstant, 300));

  const JsonValue summary = FlightRecorderSummaryJson({a, b});
  EXPECT_EQ(summary.Find("events")->number_value(), 3.0);
  EXPECT_EQ(summary.Find("dropped")->number_value(), 3.0);
  const JsonValue* threads = summary.Find("threads");
  ASSERT_NE(threads, nullptr);
  ASSERT_EQ(threads->items().size(), 2u);
  EXPECT_EQ(threads->items()[0].Find("label")->string_value(), "main");
  EXPECT_EQ(threads->items()[1].Find("label")->string_value(), "thread1");
}

#if SAFE_TELEMETRY_ENABLED

TEST(FlightRecorderTest, EightThreadsRecordWithoutLossBelowCapacity) {
  FlightRecorder recorder(/*events_per_thread=*/4096);
  constexpr size_t kThreads = 8;
  constexpr size_t kEvents = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      recorder.SetCurrentThreadLabel("t" + std::to_string(t));
      for (size_t i = 0; i < kEvents; ++i) {
        recorder.RecordInstant("evt");
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const std::vector<ThreadTimeline> timelines = recorder.Snapshot();
  ASSERT_EQ(timelines.size(), kThreads);
  for (const ThreadTimeline& timeline : timelines) {
    EXPECT_EQ(timeline.events.size(), kEvents) << timeline.label;
    EXPECT_EQ(timeline.dropped, 0u) << timeline.label;
    // Single-writer buffers on a monotonic clock: timestamps never go
    // backwards within a timeline.
    for (size_t i = 1; i < timeline.events.size(); ++i) {
      ASSERT_GE(timeline.events[i].ts_ns, timeline.events[i - 1].ts_ns)
          << timeline.label << " event " << i;
    }
  }
}

TEST(FlightRecorderTest, OverflowDropsAreExactAndClearResets) {
  FlightRecorder recorder(/*events_per_thread=*/64);
  for (int i = 0; i < 100; ++i) recorder.RecordInstant("evt");
  internal::EventBuffer* buffer = recorder.LocalBuffer();
  // Drop-on-full, not wrap: capacity K and K+N records means exactly N
  // drops, every time.
  EXPECT_EQ(buffer->size(), 64u);
  EXPECT_EQ(buffer->dropped(), 36u);
  EXPECT_EQ(buffer->capacity(), 64u);

  std::vector<ThreadTimeline> timelines = recorder.Snapshot();
  ASSERT_EQ(timelines.size(), 1u);
  EXPECT_EQ(timelines[0].events.size(), 64u);
  EXPECT_EQ(timelines[0].dropped, 36u);

  recorder.Clear();
  EXPECT_EQ(buffer->size(), 0u);
  EXPECT_EQ(buffer->dropped(), 0u);
  for (int i = 0; i < 10; ++i) recorder.RecordInstant("evt");
  EXPECT_EQ(buffer->size(), 10u);
  EXPECT_EQ(buffer->dropped(), 0u);
}

TEST(FlightRecorderTest, LabelOnlyThreadsRegisterWithoutAllocatingRings) {
  // Event storage is allocated on first Record, not at registration: a
  // thread that only labels itself (a scoring-server shard worker in a
  // disarmed process) must cost a registry entry, not a full ring —
  // otherwise server lifecycle churn retains capacity*32 bytes per
  // worker thread forever. Snapshot still surfaces the label with an
  // empty timeline, and recording later works normally.
  FlightRecorder recorder(/*events_per_thread=*/4096);
  std::thread labeler([&recorder] {
    recorder.SetCurrentThreadLabel("label-only");
  });
  labeler.join();

  std::vector<ThreadTimeline> timelines = recorder.Snapshot();
  ASSERT_EQ(timelines.size(), 1u);
  EXPECT_EQ(timelines[0].label, "label-only");
  EXPECT_TRUE(timelines[0].events.empty());
  EXPECT_EQ(timelines[0].dropped, 0u);

  // First record from this thread publishes the lazily allocated ring
  // together with the event; concurrent snapshots racing that first
  // record must see either an empty timeline or the event, never torn
  // state (this is the lazy-allocation handshake, run under tsan).
  std::atomic<bool> stop{false};
  std::thread snapshotter([&recorder, &stop] {
    // lint: mo-ok(acquire pairs with the main thread's release store after join)
    while (!stop.load(std::memory_order_acquire)) {
      for (const ThreadTimeline& timeline : recorder.Snapshot()) {
        ASSERT_LE(timeline.events.size(), 2u);
      }
    }
  });
  std::thread recorder_thread([&recorder] {
    recorder.SetCurrentThreadLabel("records");
    recorder.RecordInstant("first");
    recorder.RecordInstant("second");
  });
  recorder_thread.join();
  // lint: mo-ok(release pairs with the snapshotter's acquire load)
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  timelines = recorder.Snapshot();
  ASSERT_EQ(timelines.size(), 2u);
  EXPECT_TRUE(timelines[0].events.empty());
  ASSERT_EQ(timelines[1].events.size(), 2u);
  EXPECT_EQ(timelines[1].label, "records");
}

TEST(FlightRecorderTest, ZeroCapacityIsClampedToOne) {
  FlightRecorder recorder(/*events_per_thread=*/0);
  recorder.RecordInstant("a");
  recorder.RecordInstant("b");
  internal::EventBuffer* buffer = recorder.LocalBuffer();
  EXPECT_EQ(buffer->capacity(), 1u);
  EXPECT_EQ(buffer->size(), 1u);
  EXPECT_EQ(buffer->dropped(), 1u);
}

TEST(FlightRecorderTest, MacrosRecordOnlyWhileArmed) {
  FlightRecorder* global = FlightRecorder::Global();
  internal::EventBuffer* buffer = global->LocalBuffer();
  FlightRecorder::Disarm();

  const uint64_t before = buffer->size();
  {
    SAFE_FR_SCOPE("disarmed.scope");
    SAFE_FR_INSTANT("disarmed.instant");
    SAFE_FR_COUNTER("disarmed.counter", 1.0);
  }
  EXPECT_EQ(buffer->size(), before) << "disarmed sites must record nothing";

  FlightRecorder::Arm();
  {
    SAFE_FR_SCOPE("armed.scope");
    SAFE_FR_INSTANT("armed.instant");
    SAFE_FR_COUNTER("armed.counter", 2.0);
  }
  FlightRecorder::Disarm();
  // begin + instant + counter + end.
  EXPECT_EQ(buffer->size(), before + 4);
}

TEST(FlightRecorderTest, SampledScopeRateIsExactOverFullPeriods) {
  FlightRecorder* global = FlightRecorder::Global();
  internal::EventBuffer* buffer = global->LocalBuffer();
  FlightRecorder::Arm();
  const uint64_t before = buffer->size();
  // 256 entries at 1-in-64: the shared per-thread counter passes through
  // exactly 4 multiples of 64 in any window of 256 consecutive values,
  // so the span count is phase-independent.
  for (int i = 0; i < 256; ++i) {
    SAFE_FR_SAMPLED_SCOPE("sampled.scope", 64);
  }
  FlightRecorder::Disarm();
  EXPECT_EQ(buffer->size(), before + 8);  // 4 spans = 4 begin + 4 end
}

TEST(FlightRecorderTest, ThreadPoolWorkersAreLabeledAndChunksTraced) {
  FlightRecorder::Arm();
  {
    ThreadPool pool(4);
    ParallelForChunks(&pool, 0, 1000, 100,
                      [](size_t, size_t, size_t) {});
  }
  FlightRecorder::Disarm();

  const std::vector<ThreadTimeline> timelines =
      FlightRecorder::Global()->Snapshot();
  size_t begins = 0;
  size_t ends = 0;
  size_t labeled_workers = 0;
  for (const ThreadTimeline& timeline : timelines) {
    if (timeline.label.rfind("pool", 0) == 0 &&
        timeline.label.find(".worker") != std::string::npos) {
      ++labeled_workers;
    }
    for (const TraceEvent& event : timeline.events) {
      if (event.name == nullptr ||
          std::string(event.name) != "pool.chunk") {
        continue;
      }
      if (event.type == TraceEventType::kBegin) ++begins;
      if (event.type == TraceEventType::kEnd) ++ends;
    }
  }
  // 1000 elements at grain 100 = 10 chunks, each a complete span on a
  // labeled worker timeline.
  EXPECT_GE(begins, 10u);
  EXPECT_EQ(begins, ends);
  EXPECT_GE(labeled_workers, 4u);
}

TEST(FlightRecorderTest, GlobalSnapshotExportsWellNestedTrace) {
  FlightRecorder* global = FlightRecorder::Global();
  global->SetCurrentThreadLabel("main");
  FlightRecorder::Arm();
  {
    SAFE_FR_SCOPE("export.outer");
    SAFE_FR_COUNTER("export.depth", 1.0);
    {
      SAFE_FR_SCOPE("export.inner");
      SAFE_FR_INSTANT("export.tick");
    }
  }
  FlightRecorder::Disarm();

  const JsonValue doc = ChromeTraceJson(global->Snapshot());
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(doc.Serialize(/*indent=*/-1), &parsed, &error))
      << error;
  CheckWellNested(parsed);

  // The recorded span names survive the export.
  size_t outer_begin = 0;
  for (const JsonValue& record : parsed.Find("traceEvents")->items()) {
    if (record.Find("ph")->string_value() == "B" &&
        record.Find("name")->string_value() == "export.outer") {
      ++outer_begin;
    }
  }
  EXPECT_GE(outer_begin, 1u);
}

TEST(FlightRecorderTest, WriteChromeTraceProducesParseableFile) {
  FlightRecorder::Arm();
  FlightRecorder::Global()->RecordInstant("file.tick");
  FlightRecorder::Disarm();

  const std::string path =
      ::testing::TempDir() + "/trace_recorder_test_trace.json";
  std::string error;
  ASSERT_TRUE(WriteChromeTrace(path, &error)) << error;

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(contents.str(), &parsed, &error)) << error;
  EXPECT_NE(parsed.Find("traceEvents"), nullptr);
  std::remove(path.c_str());
}

#else  // !SAFE_TELEMETRY_ENABLED — the stubs must stay inert but usable.

TEST(FlightRecorderStubTest, ArmedStaysFalseAndSnapshotStaysEmpty) {
  FlightRecorder::Arm();
  EXPECT_FALSE(FlightRecorder::armed());
  FlightRecorder* global = FlightRecorder::Global();
  global->SetCurrentThreadLabel("main");
  global->RecordInstant("evt");
  global->RecordCounter("evt", 1.0);
  {
    SAFE_FR_SCOPE("stub.scope");
    SAFE_FR_SAMPLED_SCOPE("stub.sampled", 64);
    SAFE_FR_INSTANT("stub.instant");
    SAFE_FR_COUNTER("stub.counter", 2.0);
  }
  EXPECT_TRUE(global->Snapshot().empty());
  EXPECT_EQ(global->events_per_thread(), 0u);
  FlightRecorder::Disarm();
}

TEST(FlightRecorderStubTest, WriteChromeTraceEmitsValidEmptyDocument) {
  const std::string path =
      ::testing::TempDir() + "/trace_recorder_stub_trace.json";
  std::string error;
  ASSERT_TRUE(WriteChromeTrace(path, &error)) << error;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  JsonValue parsed;
  ASSERT_TRUE(JsonValue::Parse(contents.str(), &parsed, &error)) << error;
  const JsonValue* events = parsed.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_TRUE(events->items().empty());
  std::remove(path.c_str());
}

#endif  // SAFE_TELEMETRY_ENABLED

}  // namespace
}  // namespace obs
}  // namespace safe
