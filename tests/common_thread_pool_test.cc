#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace safe {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int value = 0;
  pool.Submit([&value] { value = 7; }).wait();
  EXPECT_EQ(value, 7);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 0, hits.size(),
              [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 5, 5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(&pool, 7, 3, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, SubrangeOffsets) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(20);
  ParallelFor(&pool, 5, 15, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 15) ? 1 : 0) << i;
  }
}

TEST(ParallelForTest, GlobalPoolWorks) {
  std::atomic<long> sum{0};
  ParallelFor(0, 1000, [&](size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPoolTest, NestedSubmitFromWorkerDoesNotDeadlock) {
  // Regression: tasks that submit subtasks to their own pool and block on
  // the futures used to deadlock once every worker was waiting (the queue
  // had work, but no thread left to drain it). Nested submission from a
  // worker now runs inline.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back(pool.Submit([&pool, &counter] {
      std::vector<std::future<void>> inner;
      for (int j = 0; j < 8; ++j) {
        inner.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
      }
      for (auto& f : inner) f.wait();
    }));
  }
  for (auto& f : outer) f.wait();
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  ParallelFor(&pool, 0, 4, [&](size_t) {
    ParallelFor(&pool, 0, 10, [&](size_t) { hits.fetch_add(1); });
  });
  EXPECT_EQ(hits.load(), 40);
}

TEST(ThreadPoolTest, WorkerIdentification) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.InWorkerThread());
  EXPECT_EQ(ThreadPool::CurrentWorkerIndex(), -1);
  std::atomic<bool> saw_worker{false};
  pool.Submit([&pool, &saw_worker] {
        if (pool.InWorkerThread() && ThreadPool::CurrentWorkerIndex() >= 0) {
          saw_worker.store(true);
        }
      })
      .wait();
  EXPECT_TRUE(saw_worker.load());
}

TEST(ParallelForChunksTest, PartitionIsIndependentOfPoolSize) {
  // The chunk boundaries handed to the callback must depend only on the
  // range and the grain — this is what makes ordered reductions
  // bit-identical at any thread count.
  auto boundaries = [](ThreadPool* pool) {
    std::vector<std::pair<size_t, size_t>> chunks(NumFixedChunks(103, 16));
    ParallelForChunks(pool, 0, 103, 16, [&](size_t c, size_t lo, size_t hi) {
      chunks[c] = {lo, hi};
    });
    return chunks;
  };
  ThreadPool pool2(2);
  ThreadPool pool5(5);
  const auto serial = boundaries(nullptr);
  EXPECT_EQ(serial.size(), 7u);
  EXPECT_EQ(serial.front().first, 0u);
  EXPECT_EQ(serial.back().second, 103u);
  EXPECT_EQ(boundaries(&pool2), serial);
  EXPECT_EQ(boundaries(&pool5), serial);
}

TEST(ParallelForChunksTest, OrderedReductionMatchesSerialSum) {
  std::vector<double> values(10000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto chunked_sum = [&](ThreadPool* pool) {
    const size_t grain = 256;
    std::vector<double> partials(NumFixedChunks(values.size(), grain), 0.0);
    ParallelForChunks(pool, 0, values.size(), grain,
                      [&](size_t c, size_t lo, size_t hi) {
                        double s = 0.0;
                        for (size_t i = lo; i < hi; ++i) s += values[i];
                        partials[c] = s;
                      });
    double total = 0.0;
    for (double p : partials) total += p;
    return total;
  };
  ThreadPool pool3(3);
  ThreadPool pool8(8);
  const double serial = chunked_sum(nullptr);
  // Bit-identical, not approximately equal: same chunks, same order.
  EXPECT_EQ(serial, chunked_sum(&pool3));
  EXPECT_EQ(serial, chunked_sum(&pool8));
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      // lint: discard-ok(the pool is never stopped before the loop ends, so Submit cannot fail; the counter asserts all 50 ran)
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace safe
