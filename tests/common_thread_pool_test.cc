#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace safe {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int value = 0;
  pool.Submit([&value] { value = 7; }).wait();
  EXPECT_EQ(value, 7);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 0, hits.size(),
              [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(&pool, 5, 5, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(&pool, 7, 3, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, SubrangeOffsets) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(20);
  ParallelFor(&pool, 5, 15, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 5 && i < 15) ? 1 : 0) << i;
  }
}

TEST(ParallelForTest, GlobalPoolWorks) {
  std::atomic<long> sum{0};
  ParallelFor(0, 1000, [&](size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace safe
