#include "src/dataframe/chunked.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/common/random.h"
#include "src/dataframe/dataframe.h"

namespace safe {
namespace {

std::shared_ptr<SpillPool> MakePool(size_t budget_bytes = 0) {
  SpillPool::Options options;
  options.resident_budget_bytes = budget_bytes;
  auto pool = SpillPool::Create(options);
  SAFE_CHECK(pool.ok());
  return *pool;
}

std::vector<double> AdversarialValues(size_t n, uint64_t seed) {
  std::vector<double> values(n);
  Rng rng(seed);
  for (auto& v : values) v = rng.NextGaussian();
  if (n > 4) {
    values[0] = std::numeric_limits<double>::quiet_NaN();
    uint64_t nan_bits = 0x7FF8DEADBEEF0001ULL;
    std::memcpy(&values[1], &nan_bits, sizeof(nan_bits));
    values[2] = -0.0;
    values[3] = std::numeric_limits<double>::denorm_min();
    values[n - 1] = std::numeric_limits<double>::infinity();
  }
  return values;
}

TEST(ChunkedVectorTest, BuilderRoundTripsExactBits) {
  // 2.5 groups: exercises the partial final group.
  const size_t kRows = 4096 * 2 + 2048;
  const std::vector<double> values = AdversarialValues(kRows, 42);
  auto pool = MakePool(4096 * sizeof(double));  // 1-group budget: spills

  ChunkedVectorBuilder<double> builder(pool, 4096);
  builder.Append(values.data(), values.size());
  auto chunks = builder.Finish();
  EXPECT_EQ(chunks->size(), kRows);
  EXPECT_EQ(chunks->num_groups(), 3u);

  std::vector<double> out(kRows);
  chunks->CopyRange(0, kRows, out.data());
  EXPECT_EQ(std::memcmp(out.data(), values.data(), kRows * sizeof(double)),
            0);
}

TEST(ChunkedVectorTest, PushAndAppendAgree) {
  const std::vector<double> values = AdversarialValues(10000, 7);
  auto pool = MakePool();
  ChunkedVectorBuilder<double> a(pool, 4096);
  ChunkedVectorBuilder<double> b(pool, 4096);
  a.Append(values.data(), values.size());
  for (double v : values) b.Push(v);
  auto ca = a.Finish();
  auto cb = b.Finish();
  std::vector<double> va(values.size());
  std::vector<double> vb(values.size());
  ca->CopyRange(0, values.size(), va.data());
  cb->CopyRange(0, values.size(), vb.data());
  EXPECT_EQ(
      std::memcmp(va.data(), vb.data(), values.size() * sizeof(double)), 0);
}

TEST(ChunkedVectorTest, SpanAndAtAgreeUnderSpill) {
  const size_t kRows = 4096 * 4;
  const std::vector<double> values = AdversarialValues(kRows, 3);
  auto pool = MakePool(2 * 4096 * sizeof(double));
  ChunkedVectorBuilder<double> builder(pool, 4096);
  builder.Append(values.data(), values.size());
  auto chunks = builder.Finish();

  // ForEachSpan walks groups in ascending row order.
  size_t expect_base = 0;
  chunks->ForEachSpan(0, kRows,
                      [&](size_t base, const double* data, size_t len) {
                        EXPECT_EQ(base, expect_base);
                        EXPECT_EQ(std::memcmp(data, values.data() + base,
                                              len * sizeof(double)),
                                  0);
                        expect_base = base + len;
                      });
  EXPECT_EQ(expect_base, kRows);

  // Random At() probes and a cursor sweep, all while groups spill.
  Rng rng(11);
  ChunkedCursor<double> cursor(chunks.get());
  for (int probe = 0; probe < 1000; ++probe) {
    const size_t i = rng.NextUint64Below(kRows);
    const double direct = chunks->At(i);
    const double via_cursor = cursor.At(i);
    EXPECT_EQ(std::memcmp(&direct, &values[i], sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&via_cursor, &values[i], sizeof(double)), 0);
  }
  EXPECT_GT(pool->stats().evictions, 0u);
}

TEST(ChunkedVectorTest, ValidRowGroupRows) {
  EXPECT_TRUE(ValidRowGroupRows(4096));
  EXPECT_TRUE(ValidRowGroupRows(65536));
  EXPECT_FALSE(ValidRowGroupRows(0));
  EXPECT_FALSE(ValidRowGroupRows(2048));   // below the minimum
  EXPECT_FALSE(ValidRowGroupRows(6000));   // not a power of two
}

TEST(ChunkedColumnTest, AsChunkedPreservesBitsAndStats) {
  const std::vector<double> values = AdversarialValues(10000, 99);
  Column dense("f", values);
  auto pool = MakePool(4096 * sizeof(double));
  Column chunked = dense.AsChunked(pool, 4096);

  EXPECT_FALSE(dense.chunked());
  EXPECT_TRUE(chunked.chunked());
  EXPECT_EQ(chunked.size(), dense.size());
  EXPECT_EQ(chunked.name(), "f");
  EXPECT_EQ(chunked.CountMissing(), dense.CountMissing());
  EXPECT_EQ(chunked.IsConstant(), dense.IsConstant());

  const std::vector<double> gathered = chunked.Gather();
  EXPECT_EQ(std::memcmp(gathered.data(), values.data(),
                        values.size() * sizeof(double)),
            0);
}

TEST(ChunkedColumnTest, RenamedSharesChunkedStorage) {
  auto pool = MakePool();
  Column column =
      Column("a", AdversarialValues(8192, 5)).AsChunked(pool, 4096);
  Column renamed = column.Renamed("b");
  EXPECT_EQ(renamed.name(), "b");
  EXPECT_TRUE(renamed.chunked());
  EXPECT_EQ(renamed.chunks().get(), column.chunks().get());
}

TEST(ChunkedColumnTest, ConstantDetectionStreamsAcrossGroups) {
  auto pool = MakePool();
  std::vector<double> values(10000, 3.5);
  Column constant = Column("c", values).AsChunked(pool, 4096);
  EXPECT_TRUE(constant.IsConstant());
  // A single differing value in the last group flips it.
  values[9999] = 3.6;
  Column varied = Column("v", std::move(values)).AsChunked(pool, 4096);
  EXPECT_FALSE(varied.IsConstant());
}

TEST(ChunkedFrameTest, ToChunkedDatasetRoundTrips) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column("x", AdversarialValues(9000, 1))).ok());
  ASSERT_TRUE(frame.AddColumn(Column("y", AdversarialValues(9000, 2))).ok());
  std::vector<double> labels(9000);
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = i % 2;
  auto dataset = MakeDataset(frame, labels);
  ASSERT_TRUE(dataset.ok());

  auto pool = MakePool(4096 * sizeof(double));
  Dataset chunked = ToChunkedDataset(*dataset, pool, 4096);
  EXPECT_TRUE(chunked.x.HasChunkedColumns());
  EXPECT_FALSE(frame.HasChunkedColumns());
  EXPECT_EQ(chunked.y.get(), dataset->y.get());  // labels stay shared

  for (size_t c = 0; c < frame.num_columns(); ++c) {
    const std::vector<double> original = frame.column(c).Gather();
    const std::vector<double> round = chunked.x.column(c).Gather();
    EXPECT_EQ(std::memcmp(original.data(), round.data(),
                          original.size() * sizeof(double)),
              0);
  }
}

TEST(ChunkedFrameTest, RowOpsMatchDensePath) {
  DataFrame dense;
  ASSERT_TRUE(dense.AddColumn(Column("x", AdversarialValues(9000, 21))).ok());
  ASSERT_TRUE(dense.AddColumn(Column("y", AdversarialValues(9000, 22))).ok());
  auto pool = MakePool(4096 * sizeof(double));
  DataFrame chunked = ToChunkedFrame(dense, pool, 4096);

  // SliceRows straddling a group boundary.
  DataFrame slice_dense = dense.SliceRows(4000, 8500);
  DataFrame slice_chunked = chunked.SliceRows(4000, 8500);
  for (size_t c = 0; c < dense.num_columns(); ++c) {
    const auto& a = slice_dense.column(c).values();
    const auto& b = slice_chunked.column(c).values();
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
  }

  // TakeRows with an arbitrary gather.
  std::vector<size_t> rows = {0, 4095, 4096, 8191, 8192, 8999, 17};
  DataFrame take_dense = dense.TakeRows(rows);
  DataFrame take_chunked = chunked.TakeRows(rows);
  for (size_t c = 0; c < dense.num_columns(); ++c) {
    const auto& a = take_dense.column(c).values();
    const auto& b = take_chunked.column(c).values();
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
  }

  // Row() and at().
  const std::vector<double> row_dense = dense.Row(4097);
  const std::vector<double> row_chunked = chunked.Row(4097);
  EXPECT_EQ(std::memcmp(row_dense.data(), row_chunked.data(),
                        row_dense.size() * sizeof(double)),
            0);

  // Select/Concat stay zero-copy on chunked columns.
  auto selected = chunked.Select({1});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected->column(0).chunks().get(),
            chunked.column(1).chunks().get());
}

TEST(ChunkedFrameTest, FrameWindowPinsMixedStorage) {
  DataFrame frame;
  ASSERT_TRUE(frame.AddColumn(Column("a", AdversarialValues(9000, 31))).ok());
  auto pool = MakePool(4096 * sizeof(double));
  Column chunked_col =
      Column("b", AdversarialValues(9000, 32)).AsChunked(pool, 4096);
  ASSERT_TRUE(frame.AddColumn(chunked_col).ok());

  // Windows at sub-group granularity (2048 divides 4096).
  for (size_t lo = 0; lo < 9000; lo += 2048) {
    const size_t hi = std::min<size_t>(9000, lo + 2048);
    FrameWindow window(frame, lo, hi);
    for (size_t r = lo; r < hi; r += 101) {
      for (size_t c = 0; c < 2; ++c) {
        const double expect = frame.at(r, c);
        const double got = window.at(r, c);
        EXPECT_EQ(std::memcmp(&expect, &got, sizeof(double)), 0)
            << "row " << r << " col " << c;
      }
    }
  }
}

TEST(ChunkedColumnTest, ValuesOnChunkedColumnDies) {
  auto pool = MakePool();
  Column column =
      Column("a", AdversarialValues(8192, 5)).AsChunked(pool, 4096);
  EXPECT_DEATH(column.values(), "chunked");
}

}  // namespace
}  // namespace safe
