#include "src/obs/trace.h"

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace safe {
namespace obs {
namespace {

#if SAFE_TELEMETRY_ENABLED

std::vector<SpanRecord> FindByName(const std::vector<SpanRecord>& spans,
                                   const std::string& name) {
  std::vector<SpanRecord> out;
  for (const auto& s : spans) {
    if (s.name == name) out.push_back(s);
  }
  return out;
}

TEST(TracerTest, NestedSpansRecordDepthAndContainment) {
  Tracer::Global()->Reset();
  {
    SAFE_TRACE_SPAN("outer");
    {
      SAFE_TRACE_SPAN("middle");
      { SAFE_TRACE_SPAN("inner"); }
    }
  }
  std::vector<SpanRecord> spans = Tracer::Global()->Snapshot();
  auto outer = FindByName(spans, "outer");
  auto middle = FindByName(spans, "middle");
  auto inner = FindByName(spans, "inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(middle.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);

  EXPECT_EQ(outer[0].depth, 0u);
  EXPECT_EQ(middle[0].depth, 1u);
  EXPECT_EQ(inner[0].depth, 2u);

  // Nesting implies interval containment: each child starts no earlier
  // and ends no later than its parent.
  EXPECT_GE(middle[0].start_ns, outer[0].start_ns);
  EXPECT_LE(middle[0].start_ns + middle[0].duration_ns,
            outer[0].start_ns + outer[0].duration_ns);
  EXPECT_GE(inner[0].start_ns, middle[0].start_ns);
  EXPECT_LE(inner[0].start_ns + inner[0].duration_ns,
            middle[0].start_ns + middle[0].duration_ns);

  // All on the same thread.
  EXPECT_EQ(outer[0].thread_index, middle[0].thread_index);
  EXPECT_EQ(outer[0].thread_index, inner[0].thread_index);
}

TEST(TracerTest, SnapshotSortedByStartTime) {
  Tracer::Global()->Reset();
  for (int i = 0; i < 5; ++i) {
    SAFE_TRACE_SPAN("sequential");
  }
  std::vector<SpanRecord> spans = Tracer::Global()->Snapshot();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_TRUE(std::is_sorted(
      spans.begin(), spans.end(),
      [](const SpanRecord& a, const SpanRecord& b) {
        return a.start_ns < b.start_ns;
      }));
  // Sequential spans on one thread must not overlap.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].start_ns,
              spans[i - 1].start_ns + spans[i - 1].duration_ns);
  }
}

TEST(TracerTest, SpansFromDifferentThreadsGetDistinctThreadIndices) {
  Tracer::Global()->Reset();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      SAFE_TRACE_SPAN("worker");
      { SAFE_TRACE_SPAN("worker.child"); }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<SpanRecord> spans = Tracer::Global()->Snapshot();
  auto workers = FindByName(spans, "worker");
  auto children = FindByName(spans, "worker.child");
  ASSERT_EQ(workers.size(), static_cast<size_t>(kThreads));
  ASSERT_EQ(children.size(), static_cast<size_t>(kThreads));

  std::set<uint32_t> indices;
  for (const auto& s : workers) indices.insert(s.thread_index);
  EXPECT_EQ(indices.size(), static_cast<size_t>(kThreads));

  // Depth is tracked per thread: every root is depth 0, every child 1.
  for (const auto& s : workers) EXPECT_EQ(s.depth, 0u);
  for (const auto& s : children) EXPECT_EQ(s.depth, 1u);
}

TEST(TracerTest, ResetDropsSpans) {
  {
    SAFE_TRACE_SPAN("doomed");
  }
  EXPECT_FALSE(Tracer::Global()->Snapshot().empty());
  Tracer::Global()->Reset();
  EXPECT_TRUE(Tracer::Global()->Snapshot().empty());
  // The tracer still works after a reset.
  {
    SAFE_TRACE_SPAN("revived");
  }
  EXPECT_EQ(Tracer::Global()->Snapshot().size(), 1u);
  Tracer::Global()->Reset();
}

#else  // !SAFE_TELEMETRY_ENABLED

TEST(TracerTest, DisabledStubsRecordNothing) {
  {
    SAFE_TRACE_SPAN("ignored");
  }
  EXPECT_TRUE(Tracer::Global()->Snapshot().empty());
}

#endif  // SAFE_TELEMETRY_ENABLED

}  // namespace
}  // namespace obs
}  // namespace safe
