// Oracle suite for the statistics the selection pipeline stands on:
// IV (Eq. 6), Pearson (Eq. 7) and JSD (Eqs. 14-15) are checked against
// closed-form hand-computed fixtures and against independent brute-force
// reference implementations on randomized inputs, plus batch-vs-single
// bitwise agreement for the parallel entry points.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/common/random.h"
#include "src/common/thread_pool.h"
#include "src/dataframe/binning.h"
#include "src/dataframe/dataframe.h"
#include "src/stats/correlation.h"
#include "src/stats/divergence.h"
#include "src/stats/iv.h"

namespace safe {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------
// Brute-force references (independent of the library implementations).

/// Eq. 6 computed from scratch: explicit per-bin counts via a linear
/// scan over the edges, then the WoE sum with the same 0.5 pseudo-count
/// convention the library documents.
double IvBruteForce(const std::vector<double>& feature,
                    const std::vector<double>& labels,
                    const std::vector<double>& edges) {
  const size_t num_cells = edges.size() + 2;  // bins + missing
  std::vector<double> pos(num_cells, 0.0), neg(num_cells, 0.0);
  double np = 0.0, nn = 0.0;
  for (size_t i = 0; i < feature.size(); ++i) {
    size_t bin;
    if (std::isnan(feature[i])) {
      bin = num_cells - 1;
    } else {
      bin = 0;
      while (bin < edges.size() && feature[i] > edges[bin]) ++bin;
    }
    if (labels[i] > 0.5) {
      pos[bin] += 1.0;
      np += 1.0;
    } else {
      neg[bin] += 1.0;
      nn += 1.0;
    }
  }
  double iv = 0.0;
  for (size_t b = 0; b < num_cells; ++b) {
    if (pos[b] == 0.0 && neg[b] == 0.0) continue;
    const double p = (pos[b] > 0.0 ? pos[b] : 0.5) / np;
    const double q = (neg[b] > 0.0 ? neg[b] : 0.5) / nn;
    iv += (p - q) * std::log(p / q);
  }
  return iv;
}

/// Eq. 7 computed from scratch with pairwise deletion of NaN rows.
double PearsonBruteForce(const std::vector<double>& a,
                         const std::vector<double>& b) {
  double sum_a = 0.0, sum_b = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) continue;
    sum_a += a[i];
    sum_b += b[i];
    ++n;
  }
  if (n == 0) return 0.0;
  const double mean_a = sum_a / n, mean_b = sum_b / n;
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) continue;
    cov += (a[i] - mean_a) * (b[i] - mean_b);
    var_a += (a[i] - mean_a) * (a[i] - mean_a);
    var_b += (b[i] - mean_b) * (b[i] - mean_b);
  }
  if (var_a == 0.0 || var_b == 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

/// Eqs. 14-15 from scratch: JSD(P,Q) = ½KL(P‖R) + ½KL(Q‖R), R = ½(P+Q).
double JsdBruteForce(const std::vector<double>& p,
                     const std::vector<double>& q) {
  double jsd = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    const double r = 0.5 * (p[i] + q[i]);
    if (p[i] > 0.0) jsd += 0.5 * p[i] * std::log(p[i] / r);
    if (q[i] > 0.0) jsd += 0.5 * q[i] * std::log(q[i] / r);
  }
  return jsd;
}

// ---------------------------------------------------------------------
// IV (Eq. 6)

TEST(IvOracleTest, TwoCleanBinsClosedForm) {
  // Bin 0 holds 3 positives / 1 negative, bin 1 the mirror image:
  // IV = (¾−¼)ln3 + (¼−¾)ln(1/3) = ln 3.
  const std::vector<double> feature = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<double> labels = {1, 1, 1, 0, 0, 0, 1, 0};
  BinEdges edges{{0.5}};
  auto iv = InformationValueWithEdges(feature, labels, edges);
  ASSERT_TRUE(iv.ok());
  EXPECT_NEAR(*iv, std::log(3.0), 1e-12);
}

TEST(IvOracleTest, PerfectSeparationUsesPseudoCount) {
  // Each bin is single-class; the empty side smooths to 0.5 counts:
  // per bin (1 − 0.25)·ln(1/0.25) = 0.75·ln4, twice → 3 ln 2.
  const std::vector<double> feature = {0, 0, 1, 1};
  const std::vector<double> labels = {1, 1, 0, 0};
  BinEdges edges{{0.5}};
  auto iv = InformationValueWithEdges(feature, labels, edges);
  ASSERT_TRUE(iv.ok());
  EXPECT_NEAR(*iv, 3.0 * std::log(2.0), 1e-12);
}

TEST(IvOracleTest, MissingValuesGetTheirOwnBin) {
  // NaN rows land in the dedicated missing bin. Here the missing bin and
  // bin 0 each hold one positive and one negative → IV = 0 exactly.
  const std::vector<double> feature = {kNaN, 0, kNaN, 0};
  const std::vector<double> labels = {1, 1, 0, 0};
  BinEdges edges{{0.5}};
  auto iv = InformationValueWithEdges(feature, labels, edges);
  ASSERT_TRUE(iv.ok());
  EXPECT_NEAR(*iv, 0.0, 1e-15);
}

TEST(IvOracleTest, SingleClassLabelsRejected) {
  const std::vector<double> feature = {0, 1, 2, 3};
  const std::vector<double> labels = {1, 1, 1, 1};
  EXPECT_FALSE(InformationValue(feature, labels, 2).ok());
}

TEST(IvOracleTest, MatchesBruteForceOnRandomizedInputs) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t rows = 50 + rng.NextUint64Below(200);
    std::vector<double> feature(rows), labels(rows);
    for (size_t i = 0; i < rows; ++i) {
      feature[i] = rng.NextDouble() * 10.0 - 5.0;
      if (rng.NextDouble() < 0.1) feature[i] = kNaN;
      labels[i] = rng.NextDouble() < 0.4 ? 1.0 : 0.0;
    }
    labels[0] = 1.0;
    labels[1] = 0.0;  // guarantee both classes
    auto edges = EqualFrequencyEdges(feature, 5);
    ASSERT_TRUE(edges.ok());
    auto iv = InformationValueWithEdges(feature, labels, *edges);
    ASSERT_TRUE(iv.ok());
    EXPECT_NEAR(*iv, IvBruteForce(feature, labels, edges->edges), 1e-10)
        << "trial " << trial;
  }
}

TEST(IvOracleTest, BatchMatchesSingleColumnBitwise) {
  Rng rng(7);
  DataFrame x;
  std::vector<double> labels(120);
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = rng.NextDouble() < 0.5 ? 1.0 : 0.0;
  }
  labels[0] = 1.0;
  labels[1] = 0.0;
  for (int c = 0; c < 6; ++c) {
    std::vector<double> v(labels.size());
    for (double& value : v) {
      value = rng.NextDouble() * 6.0 - 3.0;
      if (rng.NextDouble() < 0.05) value = kNaN;
    }
    if (c == 5) std::fill(v.begin(), v.end(), 1.0);  // constant → IV 0
    ASSERT_TRUE(x.AddColumn(Column("c" + std::to_string(c), std::move(v)))
                    .ok());
  }
  ThreadPool pool(3);
  const auto serial = InformationValueBatch(x, labels, 8, nullptr);
  const auto parallel = InformationValueBatch(x, labels, 8, &pool);
  ASSERT_EQ(serial.size(), x.num_columns());
  ASSERT_EQ(parallel.size(), x.num_columns());
  for (size_t c = 0; c < x.num_columns(); ++c) {
    auto single = InformationValue(x.column(c).values(), labels, 8);
    const double expected = single.ok() ? *single : 0.0;
    EXPECT_EQ(std::memcmp(&serial[c], &expected, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&serial[c], &parallel[c], sizeof(double)), 0);
  }
  EXPECT_EQ(serial.back(), 0.0);
}

// ---------------------------------------------------------------------
// Pearson (Eq. 7)

TEST(PearsonOracleTest, ClosedFormFixtures) {
  const std::vector<double> a = {1, 2, 3, 4};
  // Perfect affine relation → exactly ±1 up to rounding.
  std::vector<double> b(a.size());
  for (size_t i = 0; i < a.size(); ++i) b[i] = 2.0 * a[i] + 1.0;
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  for (size_t i = 0; i < a.size(); ++i) b[i] = -a[i];
  EXPECT_NEAR(PearsonCorrelation(a, b), -1.0, 1e-12);
  // Hand-computed: cov = 3.5, var_a = 5, var_b = 4.75.
  const std::vector<double> c = {2, 4, 5, 4};
  EXPECT_NEAR(PearsonCorrelation(a, c), 3.5 / std::sqrt(5.0 * 4.75), 1e-12);
  // Constant input → 0 by convention (not NaN).
  const std::vector<double> flat = {3, 3, 3, 3};
  EXPECT_EQ(PearsonCorrelation(a, flat), 0.0);
}

TEST(PearsonOracleTest, NanRowsArePairwiseDeleted) {
  // The NaN rows must be skipped as pairs: the remaining rows of `b`
  // form an exact affine image of `a`, so r = 1.
  const std::vector<double> a = {1, kNaN, 2, 3, 4, kNaN};
  const std::vector<double> b = {2, 100, 4, kNaN, 8, -7};
  // Complete pairs: (1,2), (2,4), (4,8).
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(a, b), PearsonBruteForce(a, b), 1e-12);
}

TEST(PearsonOracleTest, MatchesBruteForceOnRandomizedInputs) {
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t rows = 20 + rng.NextUint64Below(150);
    std::vector<double> a(rows), b(rows);
    for (size_t i = 0; i < rows; ++i) {
      a[i] = rng.NextDouble() * 4.0 - 2.0;
      b[i] = 0.3 * a[i] + rng.NextDouble();
      if (rng.NextDouble() < 0.08) a[i] = kNaN;
      if (rng.NextDouble() < 0.08) b[i] = kNaN;
    }
    EXPECT_NEAR(PearsonCorrelation(a, b), PearsonBruteForce(a, b), 1e-10)
        << "trial " << trial;
  }
}

TEST(PearsonOracleTest, AgainstMatchesPairwiseBitwise) {
  Rng rng(55);
  DataFrame x;
  for (int c = 0; c < 7; ++c) {
    std::vector<double> v(90);
    for (double& value : v) {
      value = rng.NextDouble() * 2.0 - 1.0;
      if (rng.NextDouble() < 0.05) value = kNaN;
    }
    ASSERT_TRUE(x.AddColumn(Column("c" + std::to_string(c), std::move(v)))
                    .ok());
  }
  const std::vector<size_t> others = {1, 3, 4, 6};
  ThreadPool pool(3);
  const auto serial = PearsonAgainst(x, 0, others, nullptr);
  const auto parallel = PearsonAgainst(x, 0, others, &pool);
  ASSERT_EQ(serial.size(), others.size());
  for (size_t i = 0; i < others.size(); ++i) {
    const double pairwise = PearsonCorrelation(x.column(0).values(),
                                               x.column(others[i]).values());
    EXPECT_EQ(std::memcmp(&serial[i], &pairwise, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&serial[i], &parallel[i], sizeof(double)), 0);
  }
}

// ---------------------------------------------------------------------
// KL / JSD (Eqs. 14-15)

TEST(DivergenceOracleTest, KlClosedForm) {
  // KL([½,½] ‖ [¼,¾]) = ½ln2 + ½ln(2/3).
  auto kl = KlDivergence({0.5, 0.5}, {0.25, 0.75});
  ASSERT_TRUE(kl.ok());
  EXPECT_NEAR(*kl, 0.5 * std::log(2.0) + 0.5 * std::log(2.0 / 3.0), 1e-12);
  // KL(P‖P) = 0; a support violation is infinite.
  auto self = KlDivergence({0.3, 0.7}, {0.3, 0.7});
  ASSERT_TRUE(self.ok());
  EXPECT_NEAR(*self, 0.0, 1e-15);
  auto inf = KlDivergence({0.5, 0.5}, {1.0, 0.0});
  ASSERT_TRUE(inf.ok());
  EXPECT_TRUE(std::isinf(*inf));
}

TEST(DivergenceOracleTest, JsdClosedForm) {
  // Identical distributions → 0; disjoint supports → the ln 2 maximum.
  auto same = JsDivergence({0.2, 0.5, 0.3}, {0.2, 0.5, 0.3});
  ASSERT_TRUE(same.ok());
  EXPECT_NEAR(*same, 0.0, 1e-15);
  auto disjoint = JsDivergence({1.0, 0.0}, {0.0, 1.0});
  ASSERT_TRUE(disjoint.ok());
  EXPECT_NEAR(*disjoint, std::log(2.0), 1e-12);
}

TEST(DivergenceOracleTest, JsdMatchesBruteForceAndIsSymmetricBounded) {
  Rng rng(321);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t k = 2 + rng.NextUint64Below(8);
    std::vector<double> p(k), q(k);
    double sp = 0.0, sq = 0.0;
    for (size_t i = 0; i < k; ++i) {
      p[i] = rng.NextDouble() + 1e-3;
      q[i] = rng.NextDouble() + 1e-3;
      sp += p[i];
      sq += q[i];
    }
    for (size_t i = 0; i < k; ++i) {
      p[i] /= sp;
      q[i] /= sq;
    }
    auto pq = JsDivergence(p, q);
    auto qp = JsDivergence(q, p);
    ASSERT_TRUE(pq.ok());
    ASSERT_TRUE(qp.ok());
    EXPECT_NEAR(*pq, JsdBruteForce(p, q), 1e-12) << "trial " << trial;
    EXPECT_NEAR(*pq, *qp, 1e-12);        // symmetry
    EXPECT_GE(*pq, -1e-15);              // non-negative
    EXPECT_LE(*pq, std::log(2.0) + 1e-12);  // bounded by ln 2
  }
}

}  // namespace
}  // namespace safe
