// Differential determinism suite for the parallel SAFE engine: a full
// Fit must produce a byte-identical serialized FeaturePlan — and
// identical selected / generated lists — at n_threads ∈ {1, 2, 8}, for
// clean, NaN-bearing and constant-column inputs. This is the engine-wide
// analogue of gbdt_parallel_determinism_test and the enforcement point
// of the DESIGN.md determinism rules.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/data/synthetic.h"
#include "tests/property_util.h"

namespace safe {
namespace {

SafeParams QuickParams(uint64_t seed) {
  SafeParams params;
  params.seed = seed;
  params.miner.num_trees = 12;
  params.miner.max_depth = 3;
  params.ranker.num_trees = 12;
  params.ranker.max_depth = 3;
  return params;
}

struct FitSnapshot {
  std::string serialized;
  std::vector<std::string> selected;
  size_t num_generated = 0;
};

FitSnapshot FitAt(const Dataset& train, SafeParams params, size_t n_threads) {
  params.n_threads = n_threads;
  SafeEngine engine(params);
  auto fit = engine.Fit(train);
  SAFE_CHECK(fit.ok()) << fit.status().ToString();
  return FitSnapshot{fit->plan.Serialize(), fit->plan.selected(),
                     fit->plan.generated().size()};
}

void ExpectIdenticalAcrossThreadCounts(const Dataset& train,
                                       const SafeParams& params) {
  const FitSnapshot reference = FitAt(train, params, 1);
  EXPECT_FALSE(reference.selected.empty());
  for (size_t n_threads : {size_t{2}, size_t{8}}) {
    const FitSnapshot run = FitAt(train, params, n_threads);
    EXPECT_EQ(run.selected, reference.selected)
        << "selected list diverged at n_threads=" << n_threads;
    EXPECT_EQ(run.num_generated, reference.num_generated)
        << "generated count diverged at n_threads=" << n_threads;
    // Byte-identity of the serialized plan is the strongest check: it
    // covers names, parents and every fitted operator parameter bit.
    EXPECT_EQ(run.serialized, reference.serialized)
        << "serialized FeaturePlan diverged at n_threads=" << n_threads;
  }
}

TEST(EngineParallelDeterminismTest, CleanDataset) {
  data::SyntheticSpec spec;
  spec.num_rows = 900;
  spec.num_features = 8;
  spec.num_informative = 3;
  spec.num_interactions = 2;
  spec.num_redundant = 1;
  spec.seed = 17;
  auto data = data::MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());
  ExpectIdenticalAcrossThreadCounts(*data, QuickParams(17));
}

TEST(EngineParallelDeterminismTest, NanBearingDataset) {
  data::SyntheticSpec spec;
  spec.num_rows = 900;
  spec.num_features = 8;
  spec.num_informative = 3;
  spec.num_interactions = 2;
  spec.missing_rate = 0.12;
  spec.seed = 23;
  auto data = data::MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());
  ExpectIdenticalAcrossThreadCounts(*data, QuickParams(23));
}

TEST(EngineParallelDeterminismTest, ConstantAndSparseColumns) {
  Dataset data = testutil::MakePropertyDataset(5);
  testutil::AppendConstantColumn(&data, "const_a", -1.0);
  testutil::AppendConstantColumn(&data, "const_b", 0.0);
  testutil::AppendMostlyMissingColumn(&data, "sparse_a", 5);
  ExpectIdenticalAcrossThreadCounts(data, QuickParams(5));
}

TEST(EngineParallelDeterminismTest, TwoIterationsWithRicherOperators) {
  // Iteration 2 builds on iteration 1's outputs, so any ordering drift
  // in generation compounds — a sharper probe than a single iteration.
  data::SyntheticSpec spec;
  spec.num_rows = 700;
  spec.num_features = 7;
  spec.num_informative = 3;
  spec.num_interactions = 2;
  spec.missing_rate = 0.05;
  spec.seed = 31;
  auto data = data::MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());
  SafeParams params = QuickParams(31);
  params.num_iterations = 2;
  params.operator_names = {"add", "sub", "mul", "div", "log", "abs"};
  ExpectIdenticalAcrossThreadCounts(*data, params);
}

TEST(EngineParallelDeterminismTest, GlobalPoolMatchesSerial) {
  // n_threads = 0 (shared global pool) must agree with the serial run
  // too — the default configuration is covered, not just explicit k.
  Dataset data = testutil::MakePropertyDataset(9);
  const SafeParams params = QuickParams(9);
  const FitSnapshot serial = FitAt(data, params, 1);
  const FitSnapshot global = FitAt(data, params, 0);
  EXPECT_EQ(global.selected, serial.selected);
  EXPECT_EQ(global.serialized, serial.serialized);
}

}  // namespace
}  // namespace safe
