#include "src/stats/divergence.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safe {
namespace {

TEST(KldTest, IdenticalDistributionsAreZero) {
  std::vector<double> p{0.25, 0.25, 0.5};
  EXPECT_NEAR(*KlDivergence(p, p), 0.0, 1e-12);
}

TEST(KldTest, KnownValue) {
  std::vector<double> p{0.5, 0.5};
  std::vector<double> q{0.25, 0.75};
  const double expected =
      0.5 * std::log(0.5 / 0.25) + 0.5 * std::log(0.5 / 0.75);
  EXPECT_NEAR(*KlDivergence(p, q), expected, 1e-12);
}

TEST(KldTest, AsymmetricInGeneral) {
  std::vector<double> p{0.9, 0.1};
  std::vector<double> q{0.5, 0.5};
  EXPECT_NE(*KlDivergence(p, q), *KlDivergence(q, p));
}

TEST(KldTest, InfiniteWhenSupportMismatch) {
  std::vector<double> p{0.5, 0.5};
  std::vector<double> q{1.0, 0.0};
  EXPECT_TRUE(std::isinf(*KlDivergence(p, q)));
}

TEST(KldTest, ZeroPTermsContributeNothing) {
  std::vector<double> p{1.0, 0.0};
  std::vector<double> q{0.5, 0.5};
  EXPECT_NEAR(*KlDivergence(p, q), std::log(2.0), 1e-12);
}

TEST(KldTest, Validation) {
  EXPECT_FALSE(KlDivergence({0.5, 0.5}, {1.0}).ok());        // size
  EXPECT_FALSE(KlDivergence({}, {}).ok());                   // empty
  EXPECT_FALSE(KlDivergence({0.7, 0.7}, {0.5, 0.5}).ok());   // not normalized
  EXPECT_FALSE(KlDivergence({-0.5, 1.5}, {0.5, 0.5}).ok());  // negative
}

TEST(JsdTest, SymmetricAndBounded) {
  std::vector<double> p{0.9, 0.1, 0.0};
  std::vector<double> q{0.0, 0.1, 0.9};
  const double pq = *JsDivergence(p, q);
  const double qp = *JsDivergence(q, p);
  EXPECT_NEAR(pq, qp, 1e-12);
  EXPECT_GE(pq, 0.0);
  EXPECT_LE(pq, std::log(2.0) + 1e-12);
}

TEST(JsdTest, DisjointSupportsHitLogTwo) {
  std::vector<double> p{1.0, 0.0};
  std::vector<double> q{0.0, 1.0};
  EXPECT_NEAR(*JsDivergence(p, q), std::log(2.0), 1e-12);
}

TEST(JsdTest, IdenticalIsZero) {
  std::vector<double> p{0.3, 0.3, 0.4};
  EXPECT_NEAR(*JsDivergence(p, p), 0.0, 1e-12);
}

TEST(StabilityTest, PerfectlyStableIsZero) {
  // 4 features, each seen in all 10 runs of 4 features.
  std::vector<size_t> counts{10, 10, 10, 10};
  EXPECT_NEAR(*FeatureStabilityJsd(counts, 10, 4), 0.0, 1e-12);
}

TEST(StabilityTest, TotallyUnstableIsLarge) {
  // 40 distinct features each seen once.
  std::vector<size_t> counts(40, 1);
  const double unstable = *FeatureStabilityJsd(counts, 10, 4);
  EXPECT_GT(unstable, 0.3);
}

TEST(StabilityTest, MoreStableScoresLower) {
  // Mostly-repeated features beat scattered ones.
  std::vector<size_t> stable{10, 10, 9, 8, 1, 1, 1};
  std::vector<size_t> scattered{5, 5, 5, 5, 5, 5, 5, 5};
  const double s = *FeatureStabilityJsd(stable, 10, 4);
  const double u = *FeatureStabilityJsd(scattered, 10, 4);
  EXPECT_LT(s, u);
}

TEST(StabilityTest, Validation) {
  EXPECT_FALSE(FeatureStabilityJsd({}, 10, 4).ok());
  EXPECT_FALSE(FeatureStabilityJsd({1, 2}, 0, 4).ok());
  EXPECT_FALSE(FeatureStabilityJsd({1, 2}, 10, 0).ok());
  EXPECT_FALSE(FeatureStabilityJsd({0, 0}, 10, 4).ok());
}

}  // namespace
}  // namespace safe
