#include "src/models/cart.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/models/dense.h"

namespace safe {
namespace models {
namespace {

struct CartFixture {
  std::vector<std::vector<double>> columns;
  std::vector<double> labels;
  std::vector<double> weights;
  std::vector<size_t> rows;

  std::vector<const std::vector<double>*> ptrs() const {
    std::vector<const std::vector<double>*> out;
    for (const auto& col : columns) out.push_back(&col);
    return out;
  }
};

/// y = 1 iff x0 > 0.5 — a single split solves it.
CartFixture AxisAligned(size_t n) {
  CartFixture fx;
  Rng rng(1);
  fx.columns.resize(2);
  for (size_t i = 0; i < n; ++i) {
    const double x0 = rng.NextDouble();
    fx.columns[0].push_back(x0);
    fx.columns[1].push_back(rng.NextGaussian());
    fx.labels.push_back(x0 > 0.5 ? 1.0 : 0.0);
    fx.weights.push_back(1.0);
    fx.rows.push_back(i);
  }
  return fx;
}

TEST(CartTest, LearnsAxisAlignedSplit) {
  CartFixture fx = AxisAligned(500);
  CartTree tree;
  CartParams params;
  Rng rng(2);
  ASSERT_TRUE(
      tree.Fit(fx.ptrs(), fx.labels, fx.weights, fx.rows, params, &rng).ok());
  ASSERT_FALSE(tree.nodes().empty());
  EXPECT_EQ(tree.nodes()[0].feature, 0);
  EXPECT_NEAR(tree.nodes()[0].threshold, 0.5, 0.05);
  double row_low[2] = {0.1, 0.0};
  double row_high[2] = {0.9, 0.0};
  EXPECT_LT(tree.PredictRowProba(row_low), 0.5);
  EXPECT_GT(tree.PredictRowProba(row_high), 0.5);
}

TEST(CartTest, PureNodeStaysLeaf) {
  CartFixture fx = AxisAligned(100);
  for (auto& y : fx.labels) y = 1.0;  // single class
  CartTree tree;
  CartParams params;
  Rng rng(3);
  ASSERT_TRUE(
      tree.Fit(fx.ptrs(), fx.labels, fx.weights, fx.rows, params, &rng).ok());
  EXPECT_EQ(tree.nodes().size(), 1u);
  double row[2] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(tree.PredictRowProba(row), 1.0);
}

TEST(CartTest, MaxDepthZeroIsAStumplessPrior) {
  CartFixture fx = AxisAligned(100);
  CartTree tree;
  CartParams params;
  params.max_depth = 0;
  Rng rng(4);
  ASSERT_TRUE(
      tree.Fit(fx.ptrs(), fx.labels, fx.weights, fx.rows, params, &rng).ok());
  EXPECT_EQ(tree.nodes().size(), 1u);
}

TEST(CartTest, WeightsShiftTheLeafProbability) {
  // Equal counts of each class, but positive rows weigh 3x.
  CartFixture fx;
  fx.columns.resize(1);
  for (size_t i = 0; i < 10; ++i) {
    fx.columns[0].push_back(1.0);  // constant: no split possible
    fx.labels.push_back(i < 5 ? 1.0 : 0.0);
    fx.weights.push_back(i < 5 ? 3.0 : 1.0);
    fx.rows.push_back(i);
  }
  CartTree tree;
  CartParams params;
  Rng rng(5);
  ASSERT_TRUE(
      tree.Fit(fx.ptrs(), fx.labels, fx.weights, fx.rows, params, &rng).ok());
  double row[1] = {1.0};
  EXPECT_DOUBLE_EQ(tree.PredictRowProba(row), 0.75);
}

TEST(CartTest, MinSamplesLeafRespected) {
  CartFixture fx = AxisAligned(100);
  CartTree tree;
  CartParams params;
  params.min_samples_leaf = 60;  // no split can satisfy both sides
  Rng rng(6);
  ASSERT_TRUE(
      tree.Fit(fx.ptrs(), fx.labels, fx.weights, fx.rows, params, &rng).ok());
  EXPECT_EQ(tree.nodes().size(), 1u);
}

TEST(CartTest, RandomThresholdModeStillLearns) {
  CartFixture fx = AxisAligned(800);
  CartTree tree;
  CartParams params;
  params.random_thresholds = true;
  params.max_depth = 6;
  Rng rng(7);
  ASSERT_TRUE(
      tree.Fit(fx.ptrs(), fx.labels, fx.weights, fx.rows, params, &rng).ok());
  // Deep-ish randomized tree still separates the classes.
  double correct = 0;
  for (size_t i = 0; i < fx.rows.size(); ++i) {
    double row[2] = {fx.columns[0][i], fx.columns[1][i]};
    const bool predicted = tree.PredictRowProba(row) > 0.5;
    if (predicted == (fx.labels[i] > 0.5)) correct += 1;
  }
  EXPECT_GT(correct / static_cast<double>(fx.rows.size()), 0.9);
}

TEST(CartTest, FeatureSubsettingUsesOnlySampledFeatures) {
  CartFixture fx = AxisAligned(300);
  CartTree tree;
  CartParams params;
  params.max_features = 1;
  Rng rng(8);
  ASSERT_TRUE(
      tree.Fit(fx.ptrs(), fx.labels, fx.weights, fx.rows, params, &rng).ok());
  // Tree is valid regardless of which feature was sampled per node.
  for (const auto& node : tree.nodes()) {
    if (!node.is_leaf()) {
      EXPECT_GE(node.feature, 0);
      EXPECT_LT(node.feature, 2);
      EXPECT_GT(node.gain, 0.0);
    }
  }
}

TEST(CartTest, ValidatesInput) {
  CartTree tree;
  CartParams params;
  Rng rng(9);
  EXPECT_FALSE(tree.Fit({}, {}, {}, {}, params, &rng).ok());
  std::vector<double> col{1.0, 2.0};
  std::vector<double> bad_labels{1.0};
  std::vector<double> weights{1.0, 1.0};
  EXPECT_FALSE(
      tree.Fit({&col}, bad_labels, weights, {0, 1}, params, &rng).ok());
}

TEST(CartTest, EmptyTreePredictsHalf) {
  CartTree tree;
  double row[1] = {0.0};
  EXPECT_DOUBLE_EQ(tree.PredictRowProba(row), 0.5);
}

TEST(StandardScalerTest, ZeroMeanUnitVariance) {
  DataFrame f;
  ASSERT_TRUE(f.AddColumn(Column("x", {2.0, 4.0, 6.0, 8.0})).ok());
  StandardScaler scaler = StandardScaler::Fit(f);
  DenseMatrix z = scaler.Transform(f);
  double sum = 0.0;
  double sum2 = 0.0;
  for (size_t r = 0; r < z.rows; ++r) {
    sum += z.at(r, 0);
    sum2 += z.at(r, 0) * z.at(r, 0);
  }
  EXPECT_NEAR(sum, 0.0, 1e-12);
  EXPECT_NEAR(sum2 / z.rows, 1.0, 1e-12);
}

TEST(StandardScalerTest, MissingImputesToZero) {
  DataFrame f;
  ASSERT_TRUE(f.AddColumn(Column("x", {1.0, std::nan(""), 3.0})).ok());
  StandardScaler scaler = StandardScaler::Fit(f);
  DenseMatrix z = scaler.Transform(f);
  EXPECT_DOUBLE_EQ(z.at(1, 0), 0.0);
}

TEST(StandardScalerTest, ConstantColumnScalesToZero) {
  DataFrame f;
  ASSERT_TRUE(f.AddColumn(Column("x", {5.0, 5.0, 5.0})).ok());
  StandardScaler scaler = StandardScaler::Fit(f);
  DenseMatrix z = scaler.Transform(f);
  for (size_t r = 0; r < z.rows; ++r) EXPECT_DOUBLE_EQ(z.at(r, 0), 0.0);
}

TEST(StandardScalerTest, ExtremeOutliersAreWinsorized) {
  std::vector<double> values(100, 0.0);
  for (size_t i = 0; i < 50; ++i) values[i] = 1.0;
  values[99] = 1e9;  // single wild outlier
  DataFrame f;
  ASSERT_TRUE(f.AddColumn(Column("x", values)).ok());
  StandardScaler scaler = StandardScaler::Fit(f);
  DenseMatrix z = scaler.Transform(f);
  for (size_t r = 0; r < z.rows; ++r) {
    EXPECT_LE(std::fabs(z.at(r, 0)), 10.0);
  }
}

TEST(StandardScalerTest, RowTransformMatchesBatch) {
  DataFrame f;
  ASSERT_TRUE(f.AddColumn(Column("x", {1.0, 2.0, 3.0})).ok());
  ASSERT_TRUE(f.AddColumn(Column("y", {-1.0, 0.0, 5.0})).ok());
  StandardScaler scaler = StandardScaler::Fit(f);
  DenseMatrix z = scaler.Transform(f);
  for (size_t r = 0; r < f.num_rows(); ++r) {
    std::vector<double> row = f.Row(r);
    // lint: discard-ok(row width matches the fitted scaler by construction; the EXPECTs below catch a silent failure)
    scaler.TransformRow(&row);
    for (size_t c = 0; c < f.num_columns(); ++c) {
      EXPECT_DOUBLE_EQ(row[c], z.at(r, c));
    }
  }
}

}  // namespace
}  // namespace models
}  // namespace safe
