// Fixture-driven self test for safe_lint: one violating and one clean
// snippet per rule (plus the annotation escape hatches), asserting exact
// rule IDs and line numbers, and a whole-tree run that must be clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/lint/lint.h"

namespace safe {
namespace lint {
namespace {

/// Index over a fixture header declaring one Status and one Result
/// function — used by the SL005 cases.
DeclIndex FixtureIndex() {
  DeclIndex index;
  index.AddHeader(
      "Status SaveModel(const std::string& path);\n"
      "Result<std::vector<double>> Scores(int k);\n"
      "class Db {\n"
      " public:\n"
      "  Status Flush();\n"
      "};\n");
  return index;
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const auto& f : findings) rules.push_back(f.rule);
  return rules;
}

// ---------------------------------------------------------------- SL001

TEST(NondeterminismRule, FlagsRawEntropyOutsideCommon) {
  const DeclIndex index;
  const auto findings = AnalyzeSource("src/core/engine.cc",
                                      "int x = std::rand();\n"
                                      "std::random_device rd;\n"
                                      "long t = time(nullptr);\n",
                                      index);
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].rule, "SL001");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].line, 2u);
  EXPECT_EQ(findings[2].line, 3u);
}

TEST(NondeterminismRule, CleanInCommonAndOnLookalikes) {
  const DeclIndex index;
  // src/common/ hosts the seeded RNG — exempt by design.
  EXPECT_TRUE(AnalyzeSource("src/common/random.cc",
                            "std::random_device rd;\n", index)
                  .empty());
  // time_point / randomize are different tokens; time without a call is a
  // plain identifier.
  EXPECT_TRUE(AnalyzeSource("src/core/engine.cc",
                            "SteadyClock::time_point tp;\n"
                            "int randomize = 0;\n"
                            "double time_budget = time_limit;\n",
                            index)
                  .empty());
}

TEST(NondeterminismRule, AnnotationEscape) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/core/engine.cc",
                            "// lint: nondeterminism-ok(wall time for the "
                            "run report only)\n"
                            "long t = time(nullptr);\n",
                            index)
                  .empty());
}

// ---------------------------------------------------------------- SL002

TEST(UnorderedRule, FlagsUnannotatedDeclaration) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/gbdt/trainer.cc",
      "#include <unordered_map>\n"
      "std::unordered_map<std::string, int> counts;\n",
      index);
  ASSERT_EQ(Rules(findings), std::vector<std::string>({"SL002"}));
  EXPECT_EQ(findings[0].line, 2u);  // the #include line is exempt
}

TEST(UnorderedRule, FlagsRangeForIteration) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/core/engine.cc",
      "std::unordered_set<int> seen;  // lint: unordered-ok(test decl)\n"
      "void F() {\n"
      "  for (int v : seen) {\n"
      "  }\n"
      "}\n",
      index);
  ASSERT_EQ(Rules(findings), std::vector<std::string>({"SL002"}));
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(UnorderedRule, ServeIsADeterministicDirectory) {
  // src/serve/ compiles plans whose instruction order is contractual, so
  // it sits inside the SL002 scan like core/stats/gbdt/baselines.
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/serve/compiled_plan.cc",
      "std::unordered_map<std::string, int> opcode_of;\n",
      index);
  ASSERT_EQ(Rules(findings), std::vector<std::string>({"SL002"}));
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_TRUE(AnalyzeSource("src/serve/scorer.cc",
                            "std::unordered_set<int> seen;  // lint: "
                            "unordered-ok(membership only)\n",
                            index)
                  .empty());
}

TEST(UnorderedRule, DataframeIsADeterministicDirectory) {
  // src/dataframe/ owns chunked storage and the spill pool; eviction
  // order and span iteration feed bit-identity guarantees, so it sits
  // inside the SL002 scan like core/stats/gbdt/baselines/serve.
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/dataframe/spill.cc",
      "std::unordered_map<uint64_t, size_t> slot_of;\n",
      index);
  ASSERT_EQ(Rules(findings), std::vector<std::string>({"SL002"}));
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_TRUE(AnalyzeSource("src/dataframe/dataframe.h",
                            "std::unordered_map<std::string, size_t> index_;"
                            "  // lint: unordered-ok(lookup only)\n",
                            index)
                  .empty());
  // SL001 covers it too: the spill pool's LRU must be insertion-ordered,
  // never clocked.
  const auto entropy = AnalyzeSource("src/dataframe/spill.cc",
                                     "long t = time(nullptr);\n", index);
  ASSERT_EQ(Rules(entropy), std::vector<std::string>({"SL001"}));
}

TEST(UnorderedRule, ServerSubtreeInheritsTheServeScan) {
  // The deterministic-directory scope keys on the first path component
  // under src/, so nested trees like src/serve/server/ (the scoring
  // server: shard routing and batch cut points must never reach the
  // outputs) are scanned without listing them separately.
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/serve/server/scoring_server.cc",
      "std::unordered_map<uint64_t, size_t> shard_of;\n",
      index);
  ASSERT_EQ(Rules(findings), std::vector<std::string>({"SL002"}));
  EXPECT_EQ(findings[0].line, 1u);
  // SL001 applies there too: the server must take time from the injected
  // clock path, never raw wall-clock calls.
  const auto entropy = AnalyzeSource("src/serve/server/micro_batcher.cc",
                                     "long t = time(nullptr);\n", index);
  ASSERT_EQ(Rules(entropy), std::vector<std::string>({"SL001"}));
}

TEST(UnorderedRule, CleanWhenAnnotatedOrOutOfScope) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/stats/iv.cc",
                            "std::unordered_set<int> seen;  // lint: "
                            "unordered-ok(membership only)\n",
                            index)
                  .empty());
  // src/obs is outside the deterministic scope dirs.
  EXPECT_TRUE(AnalyzeSource("src/obs/metrics.cc",
                            "std::unordered_map<std::string, int> m;\n",
                            index)
                  .empty());
  // Ordered containers never trigger.
  EXPECT_TRUE(AnalyzeSource("src/core/engine.cc",
                            "std::map<std::string, int> ordered;\n"
                            "for (const auto& kv : ordered) Use(kv);\n",
                            index)
                  .empty());
}

// ---------------------------------------------------------------- SL003

TEST(StableSortRule, FlagsStableSort) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/core/selection.cc",
      "void F(std::vector<int>& v) {\n"
      "  std::stable_sort(v.begin(), v.end());\n"
      "}\n",
      index);
  ASSERT_EQ(Rules(findings), std::vector<std::string>({"SL003"}));
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(StableSortRule, CleanOnPlainSortAndAnnotated) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/core/selection.cc",
                            "std::sort(v.begin(), v.end(), ByGainThenIdx);\n",
                            index)
                  .empty());
  EXPECT_TRUE(AnalyzeSource("src/core/selection.cc",
                            "// lint: stable-sort-ok(input order is itself "
                            "a documented total order here)\n"
                            "std::stable_sort(v.begin(), v.end());\n",
                            index)
                  .empty());
}

// ---------------------------------------------------------------- SL004

TEST(FpAtomicRule, FlagsFloatingPointAtomics) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/gbdt/trainer.cc",
      "std::atomic<double> sum{0.0};\n"
      "std::atomic< float > partial{0.f};\n",
      index);
  ASSERT_EQ(Rules(findings),
            std::vector<std::string>({"SL004", "SL004"}));
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].line, 2u);
}

TEST(FpAtomicRule, CleanOnIntegerAtomicsAndAnnotated) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/gbdt/trainer.cc",
                            "std::atomic<uint64_t> rows{0};\n"
                            "std::atomic<bool> done{false};\n",
                            index)
                  .empty());
  EXPECT_TRUE(AnalyzeSource("src/obs/metrics.h",
                            "std::atomic<double> v;  // lint: "
                            "fp-atomic-ok(telemetry gauge)\n",
                            index)
                  .empty());
}

// ---------------------------------------------------------------- SL005

TEST(DiscardRule, IndexesStatusAndResultDeclarations) {
  const DeclIndex index = FixtureIndex();
  EXPECT_TRUE(index.Contains("SaveModel"));
  EXPECT_TRUE(index.Contains("Scores"));
  EXPECT_TRUE(index.Contains("Flush"));
  EXPECT_FALSE(index.Contains("Db"));
  EXPECT_EQ(index.size(), 3u);
}

TEST(DiscardRule, FlagsBareAndVoidCastDiscards) {
  const DeclIndex index = FixtureIndex();
  const auto findings = AnalyzeSource(
      "src/core/engine.cc",
      "void F(Db& db) {\n"
      "  SaveModel(\"m.bin\");\n"
      "  (void)Scores(3);\n"
      "  db.Flush();\n"
      "  if (dirty) db.Flush();\n"
      "}\n",
      index);
  ASSERT_EQ(Rules(findings),
            std::vector<std::string>({"SL005", "SL005", "SL005", "SL005"}));
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].line, 3u);
  EXPECT_EQ(findings[2].line, 4u);
  EXPECT_EQ(findings[3].line, 5u);
  EXPECT_NE(findings[1].message.find("(void)-discarded"), std::string::npos);
}

TEST(DiscardRule, CleanWhenConsumed) {
  const DeclIndex index = FixtureIndex();
  EXPECT_TRUE(AnalyzeSource(
                  "src/core/engine.cc",
                  "Status G(Db& db) {\n"
                  "  Status st = SaveModel(\"m.bin\");\n"
                  "  if (!st.ok()) return st;\n"
                  "  SAFE_RETURN_NOT_OK(db.Flush());\n"
                  "  auto scores = Scores(3);\n"
                  "  return SaveModel(\"again.bin\");\n"
                  "}\n",
                  index)
                  .empty());
}

TEST(DiscardRule, AnnotationEscape) {
  const DeclIndex index = FixtureIndex();
  EXPECT_TRUE(AnalyzeSource("src/core/engine.cc",
                            "void F(Db& db) {\n"
                            "  (void)db.Flush();  // lint: discard-ok("
                            "best-effort flush on shutdown path)\n"
                            "}\n",
                            index)
                  .empty());
}

// ---------------------------------------------------------------- SL006

TEST(MemoryOrderRule, FlagsEveryNonSeqCstOrder) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/common/queue.h",
      "a.store(1, std::memory_order_relaxed);\n"
      "b.load(std::memory_order_acquire);\n"
      "c.store(2, std::memory_order_release);\n"
      "d.fetch_add(1, std::memory_order_acq_rel);\n"
      "e.load(std::memory_order_consume);\n",
      index);
  ASSERT_EQ(Rules(findings),
            std::vector<std::string>(
                {"SL006", "SL006", "SL006", "SL006", "SL006"}));
  for (size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ(findings[i].line, i + 1);
  }
}

TEST(MemoryOrderRule, SeqCstIsAlwaysClean) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/common/queue.h",
                            "a.store(1, std::memory_order_seq_cst);\n"
                            "b.load();\n",
                            index)
                  .empty());
}

TEST(MemoryOrderRule, AnnotationEscape) {
  const DeclIndex index;
  // Trailing form covers its own line; own-line form covers the next.
  EXPECT_TRUE(AnalyzeSource(
                  "src/common/queue.h",
                  "a.store(1, std::memory_order_release);  // lint: "
                  "mo-ok(pairs with the consumer's acquire load)\n"
                  "// lint: mo-ok(pairs with the producer's release store)\n"
                  "b.load(std::memory_order_acquire);\n",
                  index)
                  .empty());
}

// ---------------------------------------------------------------- SL007

TEST(BareWaitRule, FlagsPredicatelessWaitOutsideLoop) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/serve/server/worker.cc",
      "void F() {\n"
      "  cv.wait(lock);\n"
      "  if (!ready) shard->cv.Wait(mutex);\n"
      "}\n",
      index);
  ASSERT_EQ(Rules(findings), std::vector<std::string>({"SL007", "SL007"}));
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].line, 3u);
}

TEST(BareWaitRule, LoopBodiesArePredicateForm) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource(
                  "src/serve/server/worker.cc",
                  "void F() {\n"
                  "  while (!ready) cv.wait(lock);\n"
                  "  while (queue.SizeApprox() == 0 && !stop) {\n"
                  "    shard->cv.Wait(shard->mutex);\n"
                  "  }\n"
                  "  for (; !ready;) cv.wait(lock);\n"
                  "  do { cv.wait(lock); } while (!ready);\n"
                  "}\n",
                  index)
                  .empty());
}

TEST(BareWaitRule, PredicateOverloadAndOtherTokensAreClean) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource(
                  "src/serve/server/worker.cc",
                  "void F() {\n"
                  "  cv.wait(lock, [&] { return ready; });\n"  // 2-arg form
                  "  cv.wait_until(lock, deadline);\n"         // distinct token
                  "  cv.WaitUntil(mutex, deadline);\n"
                  "  future.wait();\n"                         // zero-arg
                  "  wait(status);\n"                          // free function
                  "}\n",
                  index)
                  .empty());
}

TEST(BareWaitRule, AnnotationEscape) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource(
                  "src/common/sync.h",
                  "// lint: bare-wait-ok(primitive wrapper; callers loop)\n"
                  "cv_.wait(lock);\n",
                  index)
                  .empty());
}

// ---------------------------------------------------------------- SL008

TEST(IncludeLayeringRule, LayerRanksMatchTheDag) {
  EXPECT_EQ(LayerRank("common"), 0);
  EXPECT_EQ(LayerRank("obs"), 1);
  EXPECT_EQ(LayerRank("dataframe"), 2);
  EXPECT_EQ(LayerRank("stats"), 2);
  EXPECT_EQ(LayerRank("data"), 3);
  EXPECT_EQ(LayerRank("core"), 4);
  EXPECT_EQ(LayerRank("gbdt"), 4);
  EXPECT_EQ(LayerRank("models"), 4);
  EXPECT_EQ(LayerRank("baselines"), 4);
  EXPECT_EQ(LayerRank("serve"), 5);
  EXPECT_EQ(LayerRank("serve/server"), 6);
  // Nested unknown dirs inherit their first component; unknown roots are
  // outside the DAG.
  EXPECT_EQ(LayerRank("gbdt/kernels"), 4);
  EXPECT_EQ(LayerRank("lint"), -1);
  EXPECT_EQ(LayerRank(""), -1);
}

TEST(IncludeLayeringRule, FlagsUpwardInclude) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/core/engine.cc",
      "#include \"src/serve/scorer.h\"\n", index);
  ASSERT_EQ(Rules(findings), std::vector<std::string>({"SL008"}));
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(IncludeLayeringRule, DownSameAndOutOfScopeAreClean) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/serve/scorer.cc",
                            "#include \"src/common/status.h\"\n"
                            "#include \"src/serve/compiled_plan.h\"\n"
                            "#include <vector>\n",
                            index)
                  .empty());
  // tests/ and src/lint/ are outside the layer DAG.
  EXPECT_TRUE(AnalyzeSource("tests/some_test.cc",
                            "#include \"src/serve/server/scoring_server.h\"\n",
                            index)
                  .empty());
  EXPECT_TRUE(AnalyzeSource("src/lint/rules.cc",
                            "#include \"src/serve/scorer.h\"\n", index)
                  .empty());
  // Commented-out includes never register.
  EXPECT_TRUE(AnalyzeSource("src/core/engine.cc",
                            "// #include \"src/serve/scorer.h\"\n", index)
                  .empty());
}

TEST(IncludeLayeringRule, AnnotationEscape) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource(
                  "src/common/thread_pool.cc",
                  "// lint: layering-ok(telemetry instrumentation; acyclic "
                  "at file level)\n"
                  "#include \"src/obs/metrics.h\"\n",
                  index)
                  .empty());
}

TEST(IncludeCycles, DetectsAndReportsTheCyclePath) {
  FileSet files;
  files.emplace_back("src/common/a.h", "#include \"src/common/b.h\"\n");
  files.emplace_back("src/common/b.h", "#include \"src/common/c.h\"\n");
  files.emplace_back("src/common/c.h", "#include \"src/common/a.h\"\n");
  const auto findings = CheckIncludeCycles(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "SL008");
  EXPECT_NE(findings[0].message.find("include cycle"), std::string::npos);
  // The full path is in the message: a -> b -> c -> a.
  EXPECT_NE(findings[0].message.find("src/common/a.h -> src/common/b.h -> "
                                     "src/common/c.h -> src/common/a.h"),
            std::string::npos);
}

TEST(IncludeCycles, AcyclicGraphAndExternalTargetsAreClean) {
  FileSet files;
  files.emplace_back("src/common/a.h", "#include \"src/common/b.h\"\n");
  files.emplace_back("src/common/b.h",
                     "#include \"src/common/missing.h\"\n"  // not in set
                     "#include <vector>\n");
  EXPECT_TRUE(CheckIncludeCycles(files).empty());
}

TEST(IncludeGraph, FormatsEdgesWithRanksAndCycleReport) {
  FileSet files;
  files.emplace_back("src/serve/scorer.cc",
                     "#include \"src/common/status.h\"\n");
  const std::string graph = FormatIncludeGraph(files);
  EXPECT_NE(graph.find("src/serve(5) -> src/common(0) [1]"),
            std::string::npos);
  EXPECT_NE(graph.find("No file-level include cycles"), std::string::npos);
}

// ---------------------------------------------------------------- SL009

TEST(HotPathRule, FlagsAllocationMutexAndIo) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/serve/scorer.cc",
      "// lint: hot-path\n"
      "double Score(std::vector<double>& v) {\n"
      "  v.push_back(0.0);\n"
      "  double* p = new double[4];\n"
      "  std::lock_guard<std::mutex> lock(mu);\n"
      "  mu.lock();\n"
      "  std::cout << p[0];\n"
      "  return v[0];\n"
      "}\n",
      index);
  ASSERT_EQ(Rules(findings),
            std::vector<std::string>(
                {"SL009", "SL009", "SL009", "SL009", "SL009"}));
  EXPECT_EQ(findings[0].line, 3u);  // push_back
  EXPECT_EQ(findings[1].line, 4u);  // new
  EXPECT_EQ(findings[2].line, 5u);  // lock_guard
  EXPECT_EQ(findings[3].line, 6u);  // .lock()
  EXPECT_EQ(findings[4].line, 7u);  // cout
  EXPECT_NE(findings[0].message.find("allocates"), std::string::npos);
  EXPECT_NE(findings[2].message.find("takes a mutex"), std::string::npos);
  EXPECT_NE(findings[4].message.find("performs IO"), std::string::npos);
}

TEST(HotPathRule, CleanBodyAndUnmarkedFunctions) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/serve/scorer.cc",
                            "// lint: hot-path\n"
                            "double Score(const double* row, double* out) {\n"
                            "  out[0] = row[0] * 2.0;\n"
                            "  return out[0];\n"
                            "}\n"
                            "void Cold(std::vector<double>& v) {\n"
                            "  v.push_back(0.0);\n"  // unmarked: fine
                            "}\n",
                            index)
                  .empty());
}

TEST(HotPathRule, ScanStopsAtTheBodyEnd) {
  const DeclIndex index;
  // The allocation after the marked function's closing brace is not its
  // problem.
  EXPECT_TRUE(AnalyzeSource("src/serve/scorer.cc",
                            "// lint: hot-path\n"
                            "double Score(const double* row) { return *row; }\n"
                            "void Setup(std::vector<double>& v) {\n"
                            "  v.resize(128);\n"
                            "}\n",
                            index)
                  .empty());
}

TEST(HotPathRule, AnnotationEscapesIndividualLines) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource(
                  "src/obs/recorder.h",
                  "// lint: hot-path\n"
                  "bool Record(std::vector<int>& ring) {\n"
                  "  if (ring.empty()) ring.resize(64);  // lint: "
                  "hot-path-ok(one-time lazy ring allocation)\n"
                  "  return true;\n"
                  "}\n",
                  index)
                  .empty());
}

TEST(HotPathRule, MarkerOnDeclarationIsANoOp) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/serve/scorer.h",
                            "// lint: hot-path\n"
                            "double Score(std::vector<double>& v);\n"
                            "void Cold() { v.push_back(0.0); }\n",
                            index)
                  .empty());
}

// --------------------------------------------------------- marker grammar

TEST(MarkerGrammar, BareMarkerRegistersOnlyWhenAlone) {
  const SourceFile prose = SourceFile::Parse(
      "src/doc.h",
      "// the lint: hot-path marker forbids allocation\n"
      "int x;\n");
  EXPECT_FALSE(prose.HasMarker("hot-path", 2));

  const SourceFile marked = SourceFile::Parse("src/doc.h",
                                              "// lint: hot-path\n"
                                              "int f() { return 0; }\n");
  EXPECT_TRUE(marked.HasMarker("hot-path", 2));

  // `<key>-ok(...)` is an annotation, never a marker.
  const SourceFile ann = SourceFile::Parse(
      "src/doc.h", "// lint: hot-path-ok(lazy init)\nint x;\n");
  EXPECT_FALSE(ann.HasMarker("hot-path", 2));
  EXPECT_TRUE(ann.Allows("hot-path", 2));
}

TEST(MarkerGrammar, TrailingMarkerCoversItsOwnLine) {
  const SourceFile file = SourceFile::Parse(
      "src/doc.h", "int f() { return 0; }  // lint: hot-path\n");
  EXPECT_TRUE(file.HasMarker("hot-path", 1));
}

TEST(IncludeHarvesting, RecordsQuotedIncludesFromRawText) {
  const SourceFile file = SourceFile::Parse(
      "src/core/engine.cc",
      "#include \"src/common/status.h\"\n"
      "#include <vector>\n"
      "  #  include \"src/core/plan.h\"\n"
      "const char* fake = \"#include \\\"src/serve/scorer.h\\\"\";\n");
  ASSERT_EQ(file.includes().size(), 2u);
  EXPECT_EQ(file.includes()[0].target, "src/common/status.h");
  EXPECT_EQ(file.includes()[0].line, 1u);
  EXPECT_EQ(file.includes()[1].target, "src/core/plan.h");
  EXPECT_EQ(file.includes()[1].line, 3u);
}

// ------------------------------------------------------ annotation grammar

TEST(AnnotationGrammar, EmptyReasonDoesNotSuppress) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/core/selection.cc",
      "std::stable_sort(v.begin(), v.end());  // lint: stable-sort-ok()\n",
      index);
  EXPECT_EQ(Rules(findings), std::vector<std::string>({"SL003"}));
}

TEST(AnnotationGrammar, WrongKeyDoesNotSuppress) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/core/selection.cc",
      "std::stable_sort(v.begin(), v.end());  // lint: unordered-ok(nope)\n",
      index);
  EXPECT_EQ(Rules(findings), std::vector<std::string>({"SL003"}));
}

TEST(AnnotationGrammar, CommentOnlyLineCoversNextLine) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/core/selection.cc",
                            "// lint: stable-sort-ok(fixture)\n"
                            "std::stable_sort(v.begin(), v.end());\n",
                            index)
                  .empty());
  // ...but not the line after next.
  const auto findings = AnalyzeSource(
      "src/core/selection.cc",
      "// lint: stable-sort-ok(fixture)\n"
      "int unrelated = 0;\n"
      "std::stable_sort(v.begin(), v.end());\n",
      index);
  EXPECT_EQ(Rules(findings), std::vector<std::string>({"SL003"}));
}

TEST(Findings, ToStringFormat) {
  Finding f{"SL003", "src/core/selection.cc", 12, "msg"};
  EXPECT_EQ(f.ToString(), "src/core/selection.cc:12: [SL003] msg");
}

TEST(Scrubbing, IgnoresCommentsAndStrings) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/core/engine.cc",
                            "// std::stable_sort(v.begin(), v.end());\n"
                            "const char* s = \"std::rand()\";\n"
                            "/* std::atomic<double> a; */\n",
                            index)
                  .empty());
}

// ------------------------------------------------------------- whole tree

#ifdef SAFE_REPO_ROOT
TEST(WholeTree, SrcToolsAndTestsAreClean) {
  // SL001..SL009 over the whole repo, include-cycle pass included.
  const auto findings = LintTree(SAFE_REPO_ROOT, {"src", "tools", "tests"});
  for (const auto& f : findings) {
    ADD_FAILURE() << f.ToString();
  }
  EXPECT_TRUE(findings.empty());
}

TEST(WholeTree, IncludeGraphHasNoCycles) {
  const FileSet files =
      CollectTreeFiles(SAFE_REPO_ROOT, {"src", "tools", "tests"});
  EXPECT_FALSE(files.empty());
  EXPECT_TRUE(CheckIncludeCycles(files).empty());
  EXPECT_NE(FormatIncludeGraph(files).find("No file-level include cycles"),
            std::string::npos);
}

TEST(WholeTree, IndexCoversKnownDeclarations) {
  const DeclIndex index = IndexHeaders(SAFE_REPO_ROOT);
  // Spot checks across subsystems: the SL005 rule is only as good as the
  // declaration index feeding it.
  for (const char* name :
       {"ReadCsv", "WriteCsv", "AddColumn", "Register", "Fit",
        "PredictScores", "InformationValue", "Auc", "ApplyOperator",
        "Transform", "ParseDouble", "KFoldSplit"}) {
    EXPECT_TRUE(index.Contains(name)) << name;
  }
}
#endif

}  // namespace
}  // namespace lint
}  // namespace safe
