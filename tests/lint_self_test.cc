// Fixture-driven self test for safe_lint: one violating and one clean
// snippet per rule (plus the annotation escape hatches), asserting exact
// rule IDs and line numbers, and a whole-tree run that must be clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/lint/lint.h"

namespace safe {
namespace lint {
namespace {

/// Index over a fixture header declaring one Status and one Result
/// function — used by the SL005 cases.
DeclIndex FixtureIndex() {
  DeclIndex index;
  index.AddHeader(
      "Status SaveModel(const std::string& path);\n"
      "Result<std::vector<double>> Scores(int k);\n"
      "class Db {\n"
      " public:\n"
      "  Status Flush();\n"
      "};\n");
  return index;
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const auto& f : findings) rules.push_back(f.rule);
  return rules;
}

// ---------------------------------------------------------------- SL001

TEST(NondeterminismRule, FlagsRawEntropyOutsideCommon) {
  const DeclIndex index;
  const auto findings = AnalyzeSource("src/core/engine.cc",
                                      "int x = std::rand();\n"
                                      "std::random_device rd;\n"
                                      "long t = time(nullptr);\n",
                                      index);
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].rule, "SL001");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].line, 2u);
  EXPECT_EQ(findings[2].line, 3u);
}

TEST(NondeterminismRule, CleanInCommonAndOnLookalikes) {
  const DeclIndex index;
  // src/common/ hosts the seeded RNG — exempt by design.
  EXPECT_TRUE(AnalyzeSource("src/common/random.cc",
                            "std::random_device rd;\n", index)
                  .empty());
  // time_point / randomize are different tokens; time without a call is a
  // plain identifier.
  EXPECT_TRUE(AnalyzeSource("src/core/engine.cc",
                            "SteadyClock::time_point tp;\n"
                            "int randomize = 0;\n"
                            "double time_budget = time_limit;\n",
                            index)
                  .empty());
}

TEST(NondeterminismRule, AnnotationEscape) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/core/engine.cc",
                            "// lint: nondeterminism-ok(wall time for the "
                            "run report only)\n"
                            "long t = time(nullptr);\n",
                            index)
                  .empty());
}

// ---------------------------------------------------------------- SL002

TEST(UnorderedRule, FlagsUnannotatedDeclaration) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/gbdt/trainer.cc",
      "#include <unordered_map>\n"
      "std::unordered_map<std::string, int> counts;\n",
      index);
  ASSERT_EQ(Rules(findings), std::vector<std::string>({"SL002"}));
  EXPECT_EQ(findings[0].line, 2u);  // the #include line is exempt
}

TEST(UnorderedRule, FlagsRangeForIteration) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/core/engine.cc",
      "std::unordered_set<int> seen;  // lint: unordered-ok(test decl)\n"
      "void F() {\n"
      "  for (int v : seen) {\n"
      "  }\n"
      "}\n",
      index);
  ASSERT_EQ(Rules(findings), std::vector<std::string>({"SL002"}));
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(UnorderedRule, ServeIsADeterministicDirectory) {
  // src/serve/ compiles plans whose instruction order is contractual, so
  // it sits inside the SL002 scan like core/stats/gbdt/baselines.
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/serve/compiled_plan.cc",
      "std::unordered_map<std::string, int> opcode_of;\n",
      index);
  ASSERT_EQ(Rules(findings), std::vector<std::string>({"SL002"}));
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_TRUE(AnalyzeSource("src/serve/scorer.cc",
                            "std::unordered_set<int> seen;  // lint: "
                            "unordered-ok(membership only)\n",
                            index)
                  .empty());
}

TEST(UnorderedRule, ServerSubtreeInheritsTheServeScan) {
  // The deterministic-directory scope keys on the first path component
  // under src/, so nested trees like src/serve/server/ (the scoring
  // server: shard routing and batch cut points must never reach the
  // outputs) are scanned without listing them separately.
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/serve/server/scoring_server.cc",
      "std::unordered_map<uint64_t, size_t> shard_of;\n",
      index);
  ASSERT_EQ(Rules(findings), std::vector<std::string>({"SL002"}));
  EXPECT_EQ(findings[0].line, 1u);
  // SL001 applies there too: the server must take time from the injected
  // clock path, never raw wall-clock calls.
  const auto entropy = AnalyzeSource("src/serve/server/micro_batcher.cc",
                                     "long t = time(nullptr);\n", index);
  ASSERT_EQ(Rules(entropy), std::vector<std::string>({"SL001"}));
}

TEST(UnorderedRule, CleanWhenAnnotatedOrOutOfScope) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/stats/iv.cc",
                            "std::unordered_set<int> seen;  // lint: "
                            "unordered-ok(membership only)\n",
                            index)
                  .empty());
  // src/obs is outside the deterministic scope dirs.
  EXPECT_TRUE(AnalyzeSource("src/obs/metrics.cc",
                            "std::unordered_map<std::string, int> m;\n",
                            index)
                  .empty());
  // Ordered containers never trigger.
  EXPECT_TRUE(AnalyzeSource("src/core/engine.cc",
                            "std::map<std::string, int> ordered;\n"
                            "for (const auto& kv : ordered) Use(kv);\n",
                            index)
                  .empty());
}

// ---------------------------------------------------------------- SL003

TEST(StableSortRule, FlagsStableSort) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/core/selection.cc",
      "void F(std::vector<int>& v) {\n"
      "  std::stable_sort(v.begin(), v.end());\n"
      "}\n",
      index);
  ASSERT_EQ(Rules(findings), std::vector<std::string>({"SL003"}));
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(StableSortRule, CleanOnPlainSortAndAnnotated) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/core/selection.cc",
                            "std::sort(v.begin(), v.end(), ByGainThenIdx);\n",
                            index)
                  .empty());
  EXPECT_TRUE(AnalyzeSource("src/core/selection.cc",
                            "// lint: stable-sort-ok(input order is itself "
                            "a documented total order here)\n"
                            "std::stable_sort(v.begin(), v.end());\n",
                            index)
                  .empty());
}

// ---------------------------------------------------------------- SL004

TEST(FpAtomicRule, FlagsFloatingPointAtomics) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/gbdt/trainer.cc",
      "std::atomic<double> sum{0.0};\n"
      "std::atomic< float > partial{0.f};\n",
      index);
  ASSERT_EQ(Rules(findings),
            std::vector<std::string>({"SL004", "SL004"}));
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_EQ(findings[1].line, 2u);
}

TEST(FpAtomicRule, CleanOnIntegerAtomicsAndAnnotated) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/gbdt/trainer.cc",
                            "std::atomic<uint64_t> rows{0};\n"
                            "std::atomic<bool> done{false};\n",
                            index)
                  .empty());
  EXPECT_TRUE(AnalyzeSource("src/obs/metrics.h",
                            "std::atomic<double> v;  // lint: "
                            "fp-atomic-ok(telemetry gauge)\n",
                            index)
                  .empty());
}

// ---------------------------------------------------------------- SL005

TEST(DiscardRule, IndexesStatusAndResultDeclarations) {
  const DeclIndex index = FixtureIndex();
  EXPECT_TRUE(index.Contains("SaveModel"));
  EXPECT_TRUE(index.Contains("Scores"));
  EXPECT_TRUE(index.Contains("Flush"));
  EXPECT_FALSE(index.Contains("Db"));
  EXPECT_EQ(index.size(), 3u);
}

TEST(DiscardRule, FlagsBareAndVoidCastDiscards) {
  const DeclIndex index = FixtureIndex();
  const auto findings = AnalyzeSource(
      "src/core/engine.cc",
      "void F(Db& db) {\n"
      "  SaveModel(\"m.bin\");\n"
      "  (void)Scores(3);\n"
      "  db.Flush();\n"
      "  if (dirty) db.Flush();\n"
      "}\n",
      index);
  ASSERT_EQ(Rules(findings),
            std::vector<std::string>({"SL005", "SL005", "SL005", "SL005"}));
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].line, 3u);
  EXPECT_EQ(findings[2].line, 4u);
  EXPECT_EQ(findings[3].line, 5u);
  EXPECT_NE(findings[1].message.find("(void)-discarded"), std::string::npos);
}

TEST(DiscardRule, CleanWhenConsumed) {
  const DeclIndex index = FixtureIndex();
  EXPECT_TRUE(AnalyzeSource(
                  "src/core/engine.cc",
                  "Status G(Db& db) {\n"
                  "  Status st = SaveModel(\"m.bin\");\n"
                  "  if (!st.ok()) return st;\n"
                  "  SAFE_RETURN_NOT_OK(db.Flush());\n"
                  "  auto scores = Scores(3);\n"
                  "  return SaveModel(\"again.bin\");\n"
                  "}\n",
                  index)
                  .empty());
}

TEST(DiscardRule, AnnotationEscape) {
  const DeclIndex index = FixtureIndex();
  EXPECT_TRUE(AnalyzeSource("src/core/engine.cc",
                            "void F(Db& db) {\n"
                            "  (void)db.Flush();  // lint: discard-ok("
                            "best-effort flush on shutdown path)\n"
                            "}\n",
                            index)
                  .empty());
}

// ------------------------------------------------------ annotation grammar

TEST(AnnotationGrammar, EmptyReasonDoesNotSuppress) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/core/selection.cc",
      "std::stable_sort(v.begin(), v.end());  // lint: stable-sort-ok()\n",
      index);
  EXPECT_EQ(Rules(findings), std::vector<std::string>({"SL003"}));
}

TEST(AnnotationGrammar, WrongKeyDoesNotSuppress) {
  const DeclIndex index;
  const auto findings = AnalyzeSource(
      "src/core/selection.cc",
      "std::stable_sort(v.begin(), v.end());  // lint: unordered-ok(nope)\n",
      index);
  EXPECT_EQ(Rules(findings), std::vector<std::string>({"SL003"}));
}

TEST(AnnotationGrammar, CommentOnlyLineCoversNextLine) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/core/selection.cc",
                            "// lint: stable-sort-ok(fixture)\n"
                            "std::stable_sort(v.begin(), v.end());\n",
                            index)
                  .empty());
  // ...but not the line after next.
  const auto findings = AnalyzeSource(
      "src/core/selection.cc",
      "// lint: stable-sort-ok(fixture)\n"
      "int unrelated = 0;\n"
      "std::stable_sort(v.begin(), v.end());\n",
      index);
  EXPECT_EQ(Rules(findings), std::vector<std::string>({"SL003"}));
}

TEST(Findings, ToStringFormat) {
  Finding f{"SL003", "src/core/selection.cc", 12, "msg"};
  EXPECT_EQ(f.ToString(), "src/core/selection.cc:12: [SL003] msg");
}

TEST(Scrubbing, IgnoresCommentsAndStrings) {
  const DeclIndex index;
  EXPECT_TRUE(AnalyzeSource("src/core/engine.cc",
                            "// std::stable_sort(v.begin(), v.end());\n"
                            "const char* s = \"std::rand()\";\n"
                            "/* std::atomic<double> a; */\n",
                            index)
                  .empty());
}

// ------------------------------------------------------------- whole tree

#ifdef SAFE_REPO_ROOT
TEST(WholeTree, SrcIsClean) {
  const auto findings = LintTree(SAFE_REPO_ROOT, {"src"});
  for (const auto& f : findings) {
    ADD_FAILURE() << f.ToString();
  }
  EXPECT_TRUE(findings.empty());
}

TEST(WholeTree, IndexCoversKnownDeclarations) {
  const DeclIndex index = IndexHeaders(SAFE_REPO_ROOT);
  // Spot checks across subsystems: the SL005 rule is only as good as the
  // declaration index feeding it.
  for (const char* name :
       {"ReadCsv", "WriteCsv", "AddColumn", "Register", "Fit",
        "PredictScores", "InformationValue", "Auc", "ApplyOperator",
        "Transform", "ParseDouble", "KFoldSplit"}) {
    EXPECT_TRUE(index.Contains(name)) << name;
  }
}
#endif

}  // namespace
}  // namespace lint
}  // namespace safe
