// End-to-end integration: CSV in -> split -> SAFE -> plan serialization ->
// downstream model -> scoring, plus failure injection across module
// boundaries.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/baselines/fctree.h"
#include "src/baselines/feature_engineer.h"
#include "src/baselines/tfc.h"
#include "src/core/engine.h"
#include "src/data/synthetic.h"
#include "src/dataframe/csv.h"
#include "src/dataframe/split.h"
#include "src/gbdt/booster.h"
#include "src/models/classifier.h"
#include "src/stats/auc.h"

namespace safe {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    csv_path_ = ::testing::TempDir() + "safe_integration.csv";
  }
  void TearDown() override { std::remove(csv_path_.c_str()); }
  std::string csv_path_;
};

TEST_F(IntegrationTest, CsvToSafeToScoredPredictions) {
  // 1. Materialize a synthetic dataset as CSV — the on-disk entry point a
  //    downstream user starts from.
  data::SyntheticSpec spec;
  spec.num_rows = 1500;
  spec.num_features = 8;
  spec.num_informative = 4;
  spec.num_interactions = 3;
  spec.seed = 61;
  auto data = data::MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());
  DataFrame with_label = data->x;
  ASSERT_TRUE(
      with_label.AddColumn(Column("label", data->labels())).ok());
  ASSERT_TRUE(WriteCsv(with_label, csv_path_).ok());

  // 2. Read back, split, engineer, model, score.
  auto dataset = ReadCsvDataset(csv_path_, "label");
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  auto split = SplitDataset(*dataset, 1000, 0, 500, 3);
  ASSERT_TRUE(split.ok());

  SafeParams params;
  params.seed = 9;
  SafeEngine engine(params);
  auto fit = engine.Fit(split->train);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();

  auto train_z = fit->plan.Transform(split->train.x);
  auto test_z = fit->plan.Transform(split->test.x);
  ASSERT_TRUE(train_z.ok() && test_z.ok());

  gbdt::GbdtParams model_params;
  model_params.num_trees = 40;
  Dataset train{*train_z, split->train.y};
  auto model = gbdt::Booster::Fit(train, nullptr, model_params);
  ASSERT_TRUE(model.ok());
  auto proba = model->PredictProba(*test_z);
  ASSERT_TRUE(proba.ok());
  auto auc = Auc(*proba, split->test.labels());
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(*auc, 0.8);
}

TEST_F(IntegrationTest, ServingArtifactsRoundTripThroughDisk) {
  data::SyntheticSpec spec;
  spec.num_rows = 1200;
  spec.num_features = 6;
  spec.num_informative = 3;
  spec.num_interactions = 2;
  spec.seed = 62;
  auto split = data::MakeSyntheticSplit(spec, 800, 0, 400);
  ASSERT_TRUE(split.ok());

  SafeEngine engine(SafeParams{});
  auto fit = engine.Fit(split->train);
  ASSERT_TRUE(fit.ok());
  auto train_z = fit->plan.Transform(split->train.x);
  ASSERT_TRUE(train_z.ok());
  gbdt::GbdtParams mp;
  mp.num_trees = 20;
  Dataset train{*train_z, split->train.y};
  auto model = gbdt::Booster::Fit(train, nullptr, mp);
  ASSERT_TRUE(model.ok());

  // Persist both artifacts and reload them as a fresh process would.
  const std::string plan_path = ::testing::TempDir() + "plan.txt";
  const std::string model_path = ::testing::TempDir() + "model.txt";
  {
    std::ofstream(plan_path) << fit->plan.Serialize();
    std::ofstream(model_path) << model->Serialize();
  }
  std::ifstream plan_in(plan_path);
  std::ifstream model_in(model_path);
  std::string plan_text((std::istreambuf_iterator<char>(plan_in)),
                        std::istreambuf_iterator<char>());
  std::string model_text((std::istreambuf_iterator<char>(model_in)),
                         std::istreambuf_iterator<char>());
  auto plan = FeaturePlan::Deserialize(plan_text);
  auto scorer = gbdt::Booster::Deserialize(model_text);
  ASSERT_TRUE(plan.ok() && scorer.ok());

  // Row-at-a-time serving equals batch scoring.
  auto batch_z = fit->plan.Transform(split->test.x);
  auto batch_scores = model->PredictProba(*batch_z);
  ASSERT_TRUE(batch_scores.ok());
  for (size_t r = 0; r < 50; ++r) {
    auto features = plan->TransformRow(split->test.x.Row(r));
    ASSERT_TRUE(features.ok());
    EXPECT_NEAR(scorer->PredictRowProba(*features), (*batch_scores)[r],
                1e-9);
  }
  std::remove(plan_path.c_str());
  std::remove(model_path.c_str());
}

TEST_F(IntegrationTest, AllMethodsProduceConsumablePlans) {
  data::SyntheticSpec spec;
  spec.num_rows = 900;
  spec.num_features = 6;
  spec.num_informative = 3;
  spec.num_interactions = 2;
  spec.seed = 63;
  auto split = data::MakeSyntheticSplit(spec, 600, 0, 300);
  ASSERT_TRUE(split.ok());

  SafeParams params;
  params.miner.num_trees = 10;
  params.ranker.num_trees = 10;
  std::vector<std::unique_ptr<baselines::FeatureEngineer>> methods;
  methods.push_back(std::make_unique<baselines::OrigEngineer>());
  methods.push_back(baselines::MakeSafe(params));
  methods.push_back(baselines::MakeRand(params));
  methods.push_back(baselines::MakeImp(params));
  methods.push_back(
      std::make_unique<baselines::TfcEngineer>(baselines::TfcParams{}));
  methods.push_back(
      std::make_unique<baselines::FcTreeEngineer>(baselines::FcTreeParams{}));

  for (auto& method : methods) {
    auto plan = method->FitPlan(split->train, nullptr);
    ASSERT_TRUE(plan.ok()) << method->name() << ": "
                           << plan.status().ToString();
    auto test_z = plan->Transform(split->test.x);
    ASSERT_TRUE(test_z.ok()) << method->name();
    auto clf = models::MakeClassifier(models::ClassifierKind::kXgboost, 5);
    Dataset train{*plan->Transform(split->train.x), split->train.y};
    ASSERT_TRUE(clf->Fit(train).ok()) << method->name();
    auto scores = clf->PredictScores(*test_z);
    ASSERT_TRUE(scores.ok()) << method->name();
    auto auc = Auc(*scores, split->test.labels());
    ASSERT_TRUE(auc.ok()) << method->name();
    EXPECT_GT(*auc, 0.55) << method->name();
  }
}

TEST_F(IntegrationTest, MalformedCsvFailsCleanly) {
  {
    std::ofstream out(csv_path_);
    out << "a,b,label\n1,2,1\n3,oops,0\n";
  }
  auto dataset = ReadCsvDataset(csv_path_, "label");
  ASSERT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IntegrationTest, SingleClassLabelsFailAtEngineNotCrash) {
  DataFrame x;
  std::vector<double> col(50);
  for (size_t i = 0; i < col.size(); ++i) col[i] = static_cast<double>(i);
  ASSERT_TRUE(x.AddColumn(Column("f", col)).ok());
  auto data = MakeDataset(x, std::vector<double>(50, 1.0));
  ASSERT_TRUE(data.ok());
  SafeEngine engine(SafeParams{});
  auto fit = engine.Fit(*data);
  // GBDT trains (loss degenerates to base score); the pipeline must not
  // crash. Whether it errors or returns a trivial plan, the status tells.
  if (fit.ok()) {
    EXPECT_FALSE(fit->plan.selected().empty());
  } else {
    EXPECT_FALSE(fit.status().message().empty());
  }
}

TEST_F(IntegrationTest, AllNaNColumnSurvivesPipeline) {
  data::SyntheticSpec spec;
  spec.num_rows = 600;
  spec.num_features = 5;
  spec.num_informative = 3;
  spec.num_interactions = 2;
  spec.seed = 64;
  auto data = data::MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());
  DataFrame x = data->x;
  ASSERT_TRUE(
      x.AddColumn(Column("dead", std::vector<double>(
                                     x.num_rows(),
                                     std::nan("")))).ok());
  auto with_dead = MakeDataset(x, data->labels());
  ASSERT_TRUE(with_dead.ok());
  SafeEngine engine(SafeParams{});
  auto fit = engine.Fit(*with_dead);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  auto z = fit->plan.Transform(with_dead->x);
  ASSERT_TRUE(z.ok());
}

}  // namespace
}  // namespace safe
