#include "src/stats/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"
#include "src/stats/auc.h"

namespace safe {
namespace {

TEST(LogLossTest, PerfectAndWorstCase) {
  EXPECT_NEAR(*LogLoss({1.0, 0.0}, {1.0, 0.0}), 0.0, 1e-9);
  // Confidently wrong costs ~34.5 nats at the clamp.
  EXPECT_GT(*LogLoss({0.0, 1.0}, {1.0, 0.0}), 30.0);
}

TEST(LogLossTest, UninformedPredictionIsLn2) {
  std::vector<double> p(10, 0.5);
  std::vector<double> y{1, 0, 1, 0, 1, 0, 1, 0, 1, 0};
  EXPECT_NEAR(*LogLoss(p, y), std::log(2.0), 1e-12);
}

TEST(AccuracyTest, CountsThresholdedMatches) {
  std::vector<double> scores{0.9, 0.8, 0.3, 0.1};
  std::vector<double> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(*Accuracy(scores, labels), 0.5);
  EXPECT_DOUBLE_EQ(*Accuracy(scores, labels, 0.05), 0.5);
  EXPECT_DOUBLE_EQ(*Accuracy(scores, labels, 0.95), 0.5);
}

TEST(F1Test, KnownConfusion) {
  // TP=1 (0.9/1), FP=1 (0.8/0), FN=1 (0.3/1), TN=1.
  std::vector<double> scores{0.9, 0.8, 0.3, 0.1};
  std::vector<double> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(*F1Score(scores, labels), 0.5);
}

TEST(F1Test, NoPositivesAnywhereIsZero) {
  std::vector<double> scores{0.1, 0.2};
  std::vector<double> labels{0, 0};
  EXPECT_DOUBLE_EQ(*F1Score(scores, labels), 0.0);
}

TEST(KsTest, PerfectSeparationIsOne) {
  std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  std::vector<double> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(*KsStatistic(scores, labels), 1.0);
}

TEST(KsTest, UselessScoresNearZero) {
  Rng rng(1);
  std::vector<double> scores(20000);
  std::vector<double> labels(20000);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.NextDouble();
    labels[i] = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
  }
  EXPECT_LT(*KsStatistic(scores, labels), 0.05);
}

TEST(KsTest, TiesHandledAsBlocks) {
  // All scores tied: TPR and FPR jump together -> KS = 0.
  std::vector<double> scores(10, 0.5);
  std::vector<double> labels{1, 0, 1, 0, 1, 0, 1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(*KsStatistic(scores, labels), 0.0);
}

TEST(KsTest, AgreesWithAucOrdering) {
  // Stronger scores -> both AUC and KS increase.
  Rng rng(2);
  double prev_ks = -1.0;
  for (double shift : {0.0, 1.0, 3.0}) {
    std::vector<double> scores(4000);
    std::vector<double> labels(4000);
    for (size_t i = 0; i < scores.size(); ++i) {
      labels[i] = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
      scores[i] = rng.NextGaussian() + (labels[i] > 0.5 ? shift : 0.0);
    }
    const double ks = *KsStatistic(scores, labels);
    EXPECT_GT(ks, prev_ks);
    prev_ks = ks;
  }
}

TEST(MetricsTest, Validation) {
  EXPECT_FALSE(LogLoss({}, {}).ok());
  EXPECT_FALSE(Accuracy({0.5}, {1.0, 0.0}).ok());
  EXPECT_FALSE(KsStatistic({0.5, 0.6}, {1.0, 1.0}).ok());
}

}  // namespace
}  // namespace safe
