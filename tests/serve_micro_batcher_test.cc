// Deterministic unit suite for the micro-batcher's cut policy. The
// batcher is a pure decision function (no clocks, threads, or queues),
// so every test drives it with a fake clock and scripted arrival
// sequences and asserts the exact Decision — no sleeps, no tolerance
// windows, bit-for-bit repeatable. The tsan preset re-runs the suite
// unchanged (it is single-threaded; the label documents that the server
// test layer depends on these exact semantics).

#include <gtest/gtest.h>

#include "src/serve/server/micro_batcher.h"

namespace safe {
namespace serve {
namespace server {
namespace {

constexpr uint64_t kUs = 1000;  // ns per microsecond

MicroBatcher MakeBatcher(size_t max_rows, uint64_t max_wait_us) {
  BatcherOptions options;
  options.max_batch_rows = max_rows;
  options.max_wait_us = max_wait_us;
  return MicroBatcher(options);
}

MicroBatcher::Decision Cut() {
  MicroBatcher::Decision d;
  d.action = MicroBatcher::Action::kCut;
  return d;
}

MicroBatcher::Decision WaitForever() {
  MicroBatcher::Decision d;
  d.action = MicroBatcher::Action::kWait;
  d.has_deadline = false;
  return d;
}

MicroBatcher::Decision WaitUntil(uint64_t deadline_ns) {
  MicroBatcher::Decision d;
  d.action = MicroBatcher::Action::kWait;
  d.deadline_ns = deadline_ns;
  d.has_deadline = true;
  return d;
}

TEST(MicroBatcherTest, EmptyNeverCuts) {
  const MicroBatcher batcher = MakeBatcher(4, 100);
  // An elapsed timeout with nothing staged must not cut — and must not
  // produce a deadline either (there is nothing whose wait to bound).
  EXPECT_EQ(batcher.Decide(0, 0, 0, false), WaitForever());
  EXPECT_EQ(batcher.Decide(0, 0, 500 * kUs, false), WaitForever());
  // The empty rule outranks closing: an idle shard that is shutting
  // down has nothing to flush.
  EXPECT_EQ(batcher.Decide(0, 0, 500 * kUs, true), WaitForever());
}

TEST(MicroBatcherTest, RowTriggerCutsExactlyAtB) {
  const MicroBatcher batcher = MakeBatcher(4, 100);
  const uint64_t oldest = 10 * kUs;
  const uint64_t now = 20 * kUs;  // well before the time trigger
  EXPECT_EQ(batcher.Decide(3, oldest, now, false),
            WaitUntil(oldest + 100 * kUs));
  EXPECT_EQ(batcher.Decide(4, oldest, now, false), Cut());
  // Overshoot (a multi-row request straddling B) still cuts.
  EXPECT_EQ(batcher.Decide(9, oldest, now, false), Cut());
}

TEST(MicroBatcherTest, TimeTriggerCutsExactlyAtDeadline) {
  const MicroBatcher batcher = MakeBatcher(64, 100);
  const uint64_t oldest = 7 * kUs;
  const uint64_t deadline = oldest + 100 * kUs;
  EXPECT_EQ(batcher.Decide(1, oldest, deadline - 1, false),
            WaitUntil(deadline));
  EXPECT_EQ(batcher.Decide(1, oldest, deadline, false), Cut());
  EXPECT_EQ(batcher.Decide(1, oldest, deadline + 1, false), Cut());
}

TEST(MicroBatcherTest, DeadlineAnchorsToOldestRowNotToNow) {
  const MicroBatcher batcher = MakeBatcher(64, 100);
  const uint64_t oldest = 3 * kUs;
  // However often the worker re-evaluates, the deadline never slides:
  // it is always oldest + T, independent of "now".
  for (const uint64_t now : {oldest, oldest + 10 * kUs, oldest + 99 * kUs}) {
    EXPECT_EQ(batcher.Decide(5, oldest, now, false),
              WaitUntil(oldest + 100 * kUs));
  }
}

TEST(MicroBatcherTest, FlushOnCloseCutsAnyPendingRows) {
  const MicroBatcher batcher = MakeBatcher(64, 100);
  const uint64_t oldest = 50 * kUs;
  // Far below B and far before the deadline: closing still flushes.
  EXPECT_EQ(batcher.Decide(1, oldest, oldest + 1, true), Cut());
  EXPECT_EQ(batcher.Decide(63, oldest, oldest + 1, true), Cut());
}

TEST(MicroBatcherTest, ImmediateModeCutsEveryRow) {
  // B = 1 disables coalescing: a single pending row always cuts, so the
  // server degenerates to per-request scoring with no added latency.
  const MicroBatcher batcher = MakeBatcher(1, 100);
  EXPECT_EQ(batcher.Decide(1, 0, 0, false), Cut());
  EXPECT_EQ(batcher.Decide(0, 0, 0, false), WaitForever());
}

TEST(MicroBatcherTest, ZeroWaitCutsAsSoonAsAnythingIsPending) {
  // T = 0: the time trigger fires the moment now >= oldest.
  const MicroBatcher batcher = MakeBatcher(64, 0);
  EXPECT_EQ(batcher.Decide(1, 5 * kUs, 5 * kUs, false), Cut());
  EXPECT_EQ(batcher.Decide(0, 0, 5 * kUs, false), WaitForever());
}

TEST(MicroBatcherTest, ScriptedArrivalSequence) {
  // One full life of a shard, scripted against a fake clock: arrivals
  // at t=0, 30, 30, 50us with B=4, T=100us, then a lone straggler that
  // only the time trigger can release.
  const MicroBatcher batcher = MakeBatcher(4, 100);

  // t=0: first row arrives; wait until its deadline, 100us out.
  EXPECT_EQ(batcher.Decide(1, 0, 0, false), WaitUntil(100 * kUs));
  // t=30us: two co-riders arrived; deadline still anchored at t=0's row.
  EXPECT_EQ(batcher.Decide(3, 0, 30 * kUs, false), WaitUntil(100 * kUs));
  // t=50us: fourth row reaches B -> cut, 50us before the deadline.
  EXPECT_EQ(batcher.Decide(4, 0, 50 * kUs, false), Cut());

  // t=70us: a straggler arrives into the now-empty stage; its own
  // deadline is 170us. Nothing else arrives, so the worker wakes at the
  // deadline and the time trigger releases a 1-row batch.
  EXPECT_EQ(batcher.Decide(1, 70 * kUs, 70 * kUs, false),
            WaitUntil(170 * kUs));
  EXPECT_EQ(batcher.Decide(1, 70 * kUs, 170 * kUs, false), Cut());

  // Idle again: wait with no deadline.
  EXPECT_EQ(batcher.Decide(0, 0, 170 * kUs, false), WaitForever());
}

TEST(MicroBatcherTest, DecisionEqualityIgnoresDeadlineWhenAbsent) {
  MicroBatcher::Decision a = WaitForever();
  MicroBatcher::Decision b = WaitForever();
  b.deadline_ns = 12345;  // meaningless without has_deadline
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == WaitUntil(12345));
  EXPECT_FALSE(WaitUntil(1) == WaitUntil(2));
  EXPECT_FALSE(Cut() == WaitForever());
}

}  // namespace
}  // namespace server
}  // namespace serve
}  // namespace safe
