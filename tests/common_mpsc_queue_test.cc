// Property suite for the bounded MPSC queue behind the scoring server:
// FIFO per producer, no loss, no duplication at capacity boundaries,
// and a deterministic drain after Close(). The multi-producer tests are
// re-run under ThreadSanitizer by the tsan preset — the Vyukov
// sequence-number protocol is exactly the kind of code whose bugs only
// a racing run exposes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "src/common/mpsc_queue.h"

namespace safe {
namespace {

// Encodes (producer, sequence) in one value so the consumer can check
// per-producer FIFO and global uniqueness without extra bookkeeping.
constexpr uint64_t kProducerStride = uint64_t{1} << 32;
uint64_t Tag(size_t producer, uint64_t seq) {
  return producer * kProducerStride + seq;
}

TEST(MpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(MpscQueue<int>(1024).capacity(), 1024u);
}

TEST(MpscQueueTest, FifoAndBoundedSingleThread) {
  MpscQueue<int> queue(4);
  ASSERT_EQ(queue.capacity(), 4u);
  for (int i = 0; i < 4; ++i) {
    int value = i;
    ASSERT_TRUE(queue.TryPush(value)) << i;
  }
  // Full: the bound rejects instead of blocking, and the rejected value
  // stays valid in the caller.
  int overflow = 99;
  EXPECT_FALSE(queue.TryPush(overflow));
  EXPECT_EQ(overflow, 99);
  EXPECT_EQ(queue.SizeApprox(), 4u);

  // Pop one, push one — the capacity boundary recycles cleanly.
  int out = -1;
  ASSERT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(queue.TryPush(overflow));

  for (const int expected : {1, 2, 3, 99}) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_FALSE(queue.TryPop(&out));
  EXPECT_EQ(queue.SizeApprox(), 0u);
}

TEST(MpscQueueTest, WrapsManyLaps) {
  // Far more values than capacity: every lap reuses cells, and FIFO
  // order must survive each sequence-number recycle.
  MpscQueue<uint64_t> queue(8);
  uint64_t next_push = 0;
  uint64_t next_pop = 0;
  const uint64_t total = 10000;
  while (next_pop < total) {
    while (next_push < total) {
      uint64_t value = next_push;
      if (!queue.TryPush(value)) break;
      ++next_push;
    }
    uint64_t out = 0;
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(queue.SizeApprox(), 0u);
}

TEST(MpscQueueTest, CloseRejectsPushesKeepsValuesPoppable) {
  MpscQueue<int> queue(8);
  for (int i = 0; i < 3; ++i) {
    int value = i;
    ASSERT_TRUE(queue.TryPush(value));
  }
  queue.Close();
  EXPECT_TRUE(queue.closed());
  int rejected = 7;
  EXPECT_FALSE(queue.TryPush(rejected));
  // The shutdown drain: everything accepted before Close comes out, in
  // order, then the queue reads empty forever.
  int out = -1;
  for (const int expected : {0, 1, 2}) {
    ASSERT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_FALSE(queue.TryPop(&out));
}

TEST(MpscQueueTest, MultiProducerNoLossNoDupFifoPerProducer) {
  // 4 producers x 5000 values through a 16-slot queue: constant
  // capacity-boundary pressure. The consumer checks that each
  // producer's values arrive in its push order (FIFO per producer) and
  // that the global multiset is exactly what was pushed (no loss, no
  // duplication).
  constexpr size_t kProducers = 4;
  constexpr uint64_t kPerProducer = 5000;
  MpscQueue<uint64_t> queue(16);

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        uint64_t value = Tag(p, i);
        while (!queue.TryPush(value)) std::this_thread::yield();
      }
    });
  }

  std::vector<uint64_t> next_expected(kProducers, 0);
  uint64_t received = 0;
  bool fifo_ok = true;
  while (received < kProducers * kPerProducer) {
    uint64_t value = 0;
    if (!queue.TryPop(&value)) {
      std::this_thread::yield();
      continue;
    }
    const size_t producer = static_cast<size_t>(value / kProducerStride);
    const uint64_t seq = value % kProducerStride;
    ASSERT_LT(producer, kProducers);
    // Strictly the next sequence number: an earlier value would be a
    // duplicate, a later one a loss or reorder.
    if (seq != next_expected[producer]) {
      fifo_ok = false;
      break;
    }
    next_expected[producer] = seq + 1;
    ++received;
  }
  for (std::thread& thread : producers) thread.join();
  EXPECT_TRUE(fifo_ok);
  EXPECT_EQ(received, kProducers * kPerProducer);
  for (size_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer) << "producer " << p;
  }
  EXPECT_EQ(queue.SizeApprox(), 0u);
}

TEST(MpscQueueTest, ShutdownWhileFullDrainsEverythingAccepted) {
  // Producers hammer a tiny queue while the main thread closes it
  // mid-flight. The invariant: exactly the successfully-pushed values
  // are drained afterwards — in per-producer order, nothing lost,
  // nothing duplicated — regardless of where Close lands in the race.
  constexpr size_t kProducers = 4;
  constexpr uint64_t kAttemptsPerProducer = 3000;
  MpscQueue<uint64_t> queue(8);

  std::vector<std::atomic<uint64_t>> pushed(kProducers);
  for (auto& p : pushed) p.store(0);
  std::atomic<bool> closed_seen{false};

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kAttemptsPerProducer; ++i) {
        uint64_t value = Tag(p, i);
        for (;;) {
          if (queue.TryPush(value)) {
            // TryPush only succeeds in push order per producer, so the
            // count of successes identifies exactly which values are in
            // flight: 0..pushed-1.
            // lint: mo-ok(per-producer tally; the consumer reads it only after join)
            pushed[p].fetch_add(1, std::memory_order_relaxed);
            break;
          }
          if (queue.closed()) return;  // shutdown: stop producing
          std::this_thread::yield();
        }
      }
    });
  }

  // Let the queue reach (and bounce off) full a few times, then close.
  while (queue.SizeApprox() < queue.capacity()) std::this_thread::yield();
  queue.Close();
  closed_seen.store(true);
  for (std::thread& thread : producers) thread.join();

  // Single-consumer drain after all producers finished: deterministic —
  // pop until empty, then verify exact accounting.
  std::vector<uint64_t> next_expected(kProducers, 0);
  uint64_t drained = 0;
  uint64_t value = 0;
  while (queue.TryPop(&value)) {
    const size_t producer = static_cast<size_t>(value / kProducerStride);
    const uint64_t seq = value % kProducerStride;
    ASSERT_LT(producer, kProducers);
    ASSERT_EQ(seq, next_expected[producer]) << "producer " << producer;
    next_expected[producer] = seq + 1;
    ++drained;
  }
  uint64_t total_pushed = 0;
  for (size_t p = 0; p < kProducers; ++p) {
    // lint: mo-ok(producers joined above; their final tallies are visible)
    const uint64_t count = pushed[p].load(std::memory_order_relaxed);
    EXPECT_EQ(next_expected[p], count) << "producer " << p;
    total_pushed += count;
  }
  EXPECT_EQ(drained, total_pushed);
  EXPECT_EQ(queue.SizeApprox(), 0u);
  EXPECT_TRUE(closed_seen.load());
}

TEST(MpscQueueTest, ConcurrentPushPopUnderSustainedPressure) {
  // Consumer races the producers (no quiescent drain): the acquire pop
  // of a just-published cell is the protocol's hottest edge under tsan.
  constexpr size_t kProducers = 3;
  constexpr uint64_t kPerProducer = 4000;
  MpscQueue<uint64_t> queue(4);

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        uint64_t value = Tag(p, i);
        // Yield between attempts: on a single hardware thread a raw spin
        // burns whole scheduler quanta before the consumer can run.
        while (!queue.TryPush(value)) std::this_thread::yield();
      }
    });
  }
  std::vector<uint64_t> next_expected(kProducers, 0);
  uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    uint64_t value = 0;
    if (!queue.TryPop(&value)) {
      std::this_thread::yield();
      continue;
    }
    const size_t producer = static_cast<size_t>(value / kProducerStride);
    ASSERT_EQ(value % kProducerStride, next_expected[producer]);
    ++next_expected[producer];
    ++received;
  }
  for (std::thread& thread : producers) thread.join();
  EXPECT_EQ(received, kProducers * kPerProducer);
}

}  // namespace
}  // namespace safe
