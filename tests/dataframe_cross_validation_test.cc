#include "src/dataframe/cross_validation.h"

#include <gtest/gtest.h>

#include <set>

#include "src/stats/descriptive.h"

namespace safe {
namespace {

Dataset MakeData(size_t n, double positive_rate = 0.5) {
  DataFrame f;
  std::vector<double> ids(n);
  std::vector<double> labels(n);
  const size_t positives = static_cast<size_t>(positive_rate * n);
  for (size_t i = 0; i < n; ++i) {
    ids[i] = static_cast<double>(i);
    labels[i] = i < positives ? 1.0 : 0.0;
  }
  EXPECT_TRUE(f.AddColumn(Column("id", std::move(ids))).ok());
  return *MakeDataset(std::move(f), std::move(labels));
}

TEST(KFoldTest, FoldsPartitionTheData) {
  Dataset data = MakeData(103);
  auto folds = KFoldSplit(data, 5, 1);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds->size(), 5u);
  std::multiset<double> holdout_ids;
  for (const auto& fold : *folds) {
    EXPECT_EQ(fold.train.num_rows() + fold.holdout.num_rows(), 103u);
    for (size_t r = 0; r < fold.holdout.num_rows(); ++r) {
      holdout_ids.insert(fold.holdout.x.at(r, 0));
    }
    // Fold sizes within 1 of each other.
    EXPECT_GE(fold.holdout.num_rows(), 103u / 5);
    EXPECT_LE(fold.holdout.num_rows(), 103u / 5 + 1);
  }
  EXPECT_EQ(holdout_ids.size(), 103u);
  EXPECT_EQ(std::set<double>(holdout_ids.begin(), holdout_ids.end()).size(),
            103u);
}

TEST(KFoldTest, TrainAndHoldoutDisjoint) {
  Dataset data = MakeData(50);
  auto folds = KFoldSplit(data, 4, 2);
  ASSERT_TRUE(folds.ok());
  for (const auto& fold : *folds) {
    std::set<double> train_ids;
    for (size_t r = 0; r < fold.train.num_rows(); ++r) {
      train_ids.insert(fold.train.x.at(r, 0));
    }
    for (size_t r = 0; r < fold.holdout.num_rows(); ++r) {
      EXPECT_FALSE(train_ids.count(fold.holdout.x.at(r, 0)));
    }
  }
}

TEST(KFoldTest, DeterministicInSeed) {
  Dataset data = MakeData(40);
  auto a = KFoldSplit(data, 4, 7);
  auto b = KFoldSplit(data, 4, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t f = 0; f < a->size(); ++f) {
    for (size_t r = 0; r < (*a)[f].holdout.num_rows(); ++r) {
      EXPECT_DOUBLE_EQ((*a)[f].holdout.x.at(r, 0),
                       (*b)[f].holdout.x.at(r, 0));
    }
  }
}

TEST(KFoldTest, Validation) {
  Dataset data = MakeData(10);
  EXPECT_FALSE(KFoldSplit(data, 1, 0).ok());
  EXPECT_FALSE(KFoldSplit(data, 11, 0).ok());
}

TEST(StratifiedKFoldTest, PreservesClassRatio) {
  Dataset data = MakeData(1000, 0.1);  // 10% positives
  auto folds = StratifiedKFoldSplit(data, 5, 3);
  ASSERT_TRUE(folds.ok());
  for (const auto& fold : *folds) {
    const double rate =
        static_cast<double>(CountEqual(fold.holdout.labels(), 1.0)) /
        static_cast<double>(fold.holdout.num_rows());
    EXPECT_NEAR(rate, 0.1, 0.02);
  }
}

TEST(StratifiedKFoldTest, StillPartitions) {
  Dataset data = MakeData(97, 0.3);
  auto folds = StratifiedKFoldSplit(data, 4, 5);
  ASSERT_TRUE(folds.ok());
  std::set<double> seen;
  size_t total = 0;
  for (const auto& fold : *folds) {
    total += fold.holdout.num_rows();
    for (size_t r = 0; r < fold.holdout.num_rows(); ++r) {
      seen.insert(fold.holdout.x.at(r, 0));
    }
  }
  EXPECT_EQ(total, 97u);
  EXPECT_EQ(seen.size(), 97u);
}

}  // namespace
}  // namespace safe
