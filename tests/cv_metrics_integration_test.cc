// Integration of the evaluation utilities: cross-validated SAFE uplift
// measured with the full metric set (AUC, KS, log-loss) — the workflow a
// model-risk team would run before deploying Ψ.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/data/synthetic.h"
#include "src/dataframe/cross_validation.h"
#include "src/gbdt/booster.h"
#include "src/stats/auc.h"
#include "src/stats/metrics.h"

namespace safe {
namespace {

TEST(CvMetricsIntegrationTest, CrossValidatedSafeUplift) {
  data::SyntheticSpec spec;
  spec.num_rows = 2400;
  spec.num_features = 8;
  spec.num_informative = 4;
  spec.num_interactions = 4;
  spec.linear_weight = 0.15;
  spec.positive_rate = 0.25;
  spec.seed = 404;
  auto data = data::MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());

  auto folds = StratifiedKFoldSplit(*data, 3, 9);
  ASSERT_TRUE(folds.ok());

  double mean_auc_orig = 0.0;
  double mean_auc_safe = 0.0;
  double mean_ks_safe = 0.0;
  for (const auto& fold : *folds) {
    // SAFE trained inside the fold only: no leakage into the holdout.
    SafeParams params;
    params.miner.num_trees = 12;
    params.ranker.num_trees = 12;
    params.seed = 2;
    SafeEngine engine(params);
    auto fit = engine.Fit(fold.train);
    ASSERT_TRUE(fit.ok());

    auto eval = [&](const DataFrame& train_x, const DataFrame& test_x,
                    double* auc_out, double* ks_out) {
      gbdt::GbdtParams gb;
      gb.num_trees = 30;
      Dataset train{train_x, fold.train.y};
      auto model = gbdt::Booster::Fit(train, nullptr, gb);
      ASSERT_TRUE(model.ok());
      auto proba = model->PredictProba(test_x);
      ASSERT_TRUE(proba.ok());
      auto auc = Auc(*proba, fold.holdout.labels());
      auto ks = KsStatistic(*proba, fold.holdout.labels());
      auto loss = LogLoss(*proba, fold.holdout.labels());
      ASSERT_TRUE(auc.ok() && ks.ok() && loss.ok());
      EXPECT_GT(*loss, 0.0);
      *auc_out = *auc;
      *ks_out = *ks;
    };

    double auc_orig = 0.0;
    double ks_unused = 0.0;
    eval(fold.train.x, fold.holdout.x, &auc_orig, &ks_unused);

    auto train_z = fit->plan.Transform(fold.train.x);
    auto holdout_z = fit->plan.Transform(fold.holdout.x);
    ASSERT_TRUE(train_z.ok() && holdout_z.ok());
    double auc_safe = 0.0;
    double ks_safe = 0.0;
    eval(*train_z, *holdout_z, &auc_safe, &ks_safe);

    mean_auc_orig += auc_orig / 3.0;
    mean_auc_safe += auc_safe / 3.0;
    mean_ks_safe += ks_safe / 3.0;
  }

  // Cross-validated: SAFE at least competitive with ORIG, never a large
  // regression; KS meaningfully positive on a learnable problem.
  EXPECT_GT(mean_auc_safe, mean_auc_orig - 0.02);
  EXPECT_GT(mean_ks_safe, 0.3);
}

TEST(CvMetricsIntegrationTest, KsAndAucAgreeOnUplift) {
  // For the same scores, KS and AUC rank feature sets the same way on a
  // strongly-separable vs weakly-separable problem.
  data::SyntheticSpec easy;
  easy.num_rows = 1200;
  easy.num_features = 6;
  easy.num_informative = 4;
  easy.num_interactions = 2;
  easy.noise = 0.05;
  easy.seed = 405;
  data::SyntheticSpec hard = easy;
  hard.noise = 1.5;
  hard.seed = 406;

  double auc[2];
  double ks[2];
  const data::SyntheticSpec* specs[2] = {&easy, &hard};
  for (int i = 0; i < 2; ++i) {
    auto split = data::MakeSyntheticSplit(*specs[i], 800, 0, 400);
    ASSERT_TRUE(split.ok());
    gbdt::GbdtParams gb;
    gb.num_trees = 25;
    auto model = gbdt::Booster::Fit(split->train, nullptr, gb);
    ASSERT_TRUE(model.ok());
    auto proba = model->PredictProba(split->test.x);
    ASSERT_TRUE(proba.ok());
    auc[i] = *Auc(*proba, split->test.labels());
    ks[i] = *KsStatistic(*proba, split->test.labels());
  }
  EXPECT_GT(auc[0], auc[1]);
  EXPECT_GT(ks[0], ks[1]);
}

}  // namespace
}  // namespace safe
