#include "src/dataframe/binning.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"

namespace safe {
namespace {

TEST(BinEdgesTest, BinIndexBoundaries) {
  BinEdges edges{{1.0, 2.0, 3.0}};
  EXPECT_EQ(edges.num_bins(), 4u);
  EXPECT_EQ(edges.BinIndex(0.5), 0u);
  EXPECT_EQ(edges.BinIndex(1.0), 0u);   // inclusive upper edge
  EXPECT_EQ(edges.BinIndex(1.5), 1u);
  EXPECT_EQ(edges.BinIndex(3.0), 2u);
  EXPECT_EQ(edges.BinIndex(99.0), 3u);
  EXPECT_EQ(edges.BinIndex(std::nan("")), edges.missing_bin());
}

TEST(EqualFrequencyTest, BalancedBins) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(static_cast<double>(i));
  auto edges = EqualFrequencyEdges(values, 10);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->edges.size(), 9u);
  // Each bin should hold ~100 values.
  std::vector<int> counts(edges->num_bins(), 0);
  for (double v : values) ++counts[edges->BinIndex(v)];
  for (int c : counts) EXPECT_NEAR(c, 100, 1);
}

TEST(EqualFrequencyTest, HeavyTiesCollapseBins) {
  std::vector<double> values(100, 5.0);
  values.push_back(6.0);
  auto edges = EqualFrequencyEdges(values, 10);
  ASSERT_TRUE(edges.ok());
  // All mass at 5.0: at most one usable cut.
  EXPECT_LE(edges->edges.size(), 1u);
}

TEST(EqualFrequencyTest, ConstantColumnYieldsSingleBin) {
  std::vector<double> values(50, 3.14);
  auto edges = EqualFrequencyEdges(values, 8);
  ASSERT_TRUE(edges.ok());
  EXPECT_TRUE(edges->edges.empty());
  EXPECT_EQ(edges->BinIndex(3.14), 0u);
}

TEST(EqualFrequencyTest, IgnoresMissing) {
  std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8};
  values.push_back(std::nan(""));
  auto edges = EqualFrequencyEdges(values, 4);
  ASSERT_TRUE(edges.ok());
  EXPECT_FALSE(edges->edges.empty());
  EXPECT_EQ(edges->BinIndex(std::nan("")), edges->missing_bin());
}

TEST(EqualFrequencyTest, RejectsAllMissingAndBadBins) {
  std::vector<double> all_nan(5, std::nan(""));
  EXPECT_FALSE(EqualFrequencyEdges(all_nan, 4).ok());
  EXPECT_FALSE(EqualFrequencyEdges({1.0, 2.0}, 1).ok());
}

TEST(EqualFrequencyTest, NoEmptyLastBin) {
  // Max value repeated: trailing edges equal to max must be dropped.
  std::vector<double> values{1, 2, 3, 9, 9, 9, 9, 9};
  auto edges = EqualFrequencyEdges(values, 4);
  ASSERT_TRUE(edges.ok());
  for (double e : edges->edges) EXPECT_LT(e, 9.0);
  // The max value lands in the last bin, which is nonempty.
  EXPECT_EQ(edges->BinIndex(9.0), edges->edges.size());
}

TEST(EqualWidthTest, UniformWidths) {
  std::vector<double> values{0.0, 10.0};
  auto edges = EqualWidthEdges(values, 5);
  ASSERT_TRUE(edges.ok());
  ASSERT_EQ(edges->edges.size(), 4u);
  EXPECT_DOUBLE_EQ(edges->edges[0], 2.0);
  EXPECT_DOUBLE_EQ(edges->edges[3], 8.0);
}

TEST(EqualWidthTest, ConstantColumn) {
  std::vector<double> values(10, 1.0);
  auto edges = EqualWidthEdges(values, 5);
  ASSERT_TRUE(edges.ok());
  EXPECT_TRUE(edges->edges.empty());
}

TEST(ApplyBinsTest, MapsValuesToIndices) {
  BinEdges edges{{0.0, 1.0}};
  auto binned = ApplyBins(edges, {-1.0, 0.5, 2.0, std::nan("")});
  EXPECT_EQ(binned[0], 0.0);
  EXPECT_EQ(binned[1], 1.0);
  EXPECT_EQ(binned[2], 2.0);
  EXPECT_EQ(binned[3], static_cast<double>(edges.missing_bin()));
}

// Property sweep: bin counts from equal-frequency edges are within a
// factor-2 balance for continuous data, for many bin widths.
class EqualFrequencyPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EqualFrequencyPropertyTest, RoughBalanceOnContinuousData) {
  const size_t num_bins = GetParam();
  Rng rng(num_bins * 977);
  std::vector<double> values(5000);
  for (double& v : values) v = rng.NextGaussian();
  auto edges = EqualFrequencyEdges(values, num_bins);
  ASSERT_TRUE(edges.ok());
  std::vector<size_t> counts(edges->num_bins(), 0);
  for (double v : values) ++counts[edges->BinIndex(v)];
  const double expected =
      static_cast<double>(values.size()) / static_cast<double>(num_bins);
  for (size_t b = 0; b < edges->num_bins(); ++b) {
    EXPECT_LT(counts[b], expected * 2.0) << "bin " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EqualFrequencyPropertyTest,
                         ::testing::Values(2, 3, 5, 10, 20, 64));

}  // namespace
}  // namespace safe
