// Cross-module property suites (parameterized over seeds): invariants
// that must hold for any data the generator can produce.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/core/engine.h"
#include "src/core/selection.h"
#include "src/data/synthetic.h"
#include "src/gbdt/booster.h"
#include "src/stats/auc.h"
#include "src/stats/correlation.h"
#include "src/stats/iv.h"

namespace safe {
namespace {

data::SyntheticSpec SeededSpec(uint64_t seed) {
  data::SyntheticSpec spec;
  spec.num_rows = 800;
  spec.num_features = 7;
  spec.num_informative = 3;
  spec.num_interactions = 2;
  spec.num_redundant = 1;
  spec.seed = seed;
  return spec;
}

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, RedundancyFilterPostcondition) {
  // After the filter, no kept pair exceeds the threshold.
  auto data = data::MakeSyntheticDataset(SeededSpec(GetParam()));
  ASSERT_TRUE(data.ok());
  const auto ivs = ComputeIvs(data->x, data->labels(), 10);
  std::vector<size_t> all(data->x.num_columns());
  for (size_t c = 0; c < all.size(); ++c) all[c] = c;
  const double theta = 0.8;
  auto kept = RedundancyFilterIndices(data->x, ivs, all, theta);
  ASSERT_FALSE(kept.empty());
  for (size_t i = 0; i < kept.size(); ++i) {
    for (size_t j = i + 1; j < kept.size(); ++j) {
      const double r =
          PearsonCorrelation(data->x.column(kept[i]).values(),
                             data->x.column(kept[j]).values());
      EXPECT_LE(std::fabs(r), theta + 1e-9)
          << kept[i] << " vs " << kept[j];
    }
  }
}

TEST_P(SeedSweepTest, GbdtTrainAucAboveChance) {
  auto data = data::MakeSyntheticDataset(SeededSpec(GetParam()));
  ASSERT_TRUE(data.ok());
  gbdt::GbdtParams params;
  params.num_trees = 15;
  auto model = gbdt::Booster::Fit(*data, nullptr, params);
  ASSERT_TRUE(model.ok());
  auto proba = model->PredictProba(data->x);
  ASSERT_TRUE(proba.ok());
  auto auc = Auc(*proba, data->labels());
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(*auc, 0.6);
}

TEST_P(SeedSweepTest, EngineFunnelMonotone) {
  // Each selection stage can only shrink the candidate set, and the
  // output respects the 2M cap.
  auto data = data::MakeSyntheticDataset(SeededSpec(GetParam()));
  ASSERT_TRUE(data.ok());
  SafeParams params;
  params.seed = GetParam();
  params.miner.num_trees = 10;
  params.ranker.num_trees = 10;
  SafeEngine engine(params);
  auto fit = engine.Fit(*data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  for (const auto& diag : fit->iterations) {
    EXPECT_GE(diag.num_candidates, diag.num_after_iv);
    EXPECT_GE(diag.num_after_iv, diag.num_after_redundancy);
    EXPECT_GE(diag.num_after_redundancy, diag.num_selected);
    EXPECT_LE(diag.num_selected, 2 * data->x.num_columns());
  }
}

TEST_P(SeedSweepTest, PlanReplayIsIdempotent) {
  // Transform(x) twice gives identical output — Ψ is a pure function.
  auto data = data::MakeSyntheticDataset(SeededSpec(GetParam()));
  ASSERT_TRUE(data.ok());
  SafeParams params;
  params.seed = GetParam() * 3 + 1;
  params.miner.num_trees = 10;
  params.ranker.num_trees = 10;
  SafeEngine engine(params);
  auto fit = engine.Fit(*data);
  ASSERT_TRUE(fit.ok());
  auto a = fit->plan.Transform(data->x);
  auto b = fit->plan.Transform(data->x);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t c = 0; c < a->num_columns(); ++c) {
    const auto& va = a->column(c).values();
    const auto& vb = b->column(c).values();
    for (size_t r = 0; r < va.size(); ++r) {
      if (std::isnan(va[r])) {
        EXPECT_TRUE(std::isnan(vb[r]));
      } else {
        EXPECT_DOUBLE_EQ(va[r], vb[r]);
      }
    }
  }
}

TEST_P(SeedSweepTest, SelectedNamesAreUniqueAndResolvable) {
  auto data = data::MakeSyntheticDataset(SeededSpec(GetParam()));
  ASSERT_TRUE(data.ok());
  SafeParams params;
  params.seed = GetParam() + 11;
  params.miner.num_trees = 10;
  params.ranker.num_trees = 10;
  SafeEngine engine(params);
  auto fit = engine.Fit(*data);
  ASSERT_TRUE(fit.ok());
  std::set<std::string> names(fit->plan.selected().begin(),
                              fit->plan.selected().end());
  EXPECT_EQ(names.size(), fit->plan.selected().size());
  auto z = fit->plan.Transform(data->x);
  ASSERT_TRUE(z.ok());
  EXPECT_EQ(z->num_columns(), fit->plan.selected().size());
  for (const auto& name : fit->plan.selected()) {
    EXPECT_TRUE(z->HasColumn(name));
  }
}

TEST_P(SeedSweepTest, GbdtPathsConsistentWithTreeCount) {
  auto data = data::MakeSyntheticDataset(SeededSpec(GetParam()));
  ASSERT_TRUE(data.ok());
  gbdt::GbdtParams params;
  params.num_trees = 8;
  params.max_depth = 3;
  auto model = gbdt::Booster::Fit(*data, nullptr, params);
  ASSERT_TRUE(model.ok());
  const auto paths = model->ExtractAllPaths();
  // Each depth-3 tree has at most 8 leaves; at least one path per
  // splitting tree.
  EXPECT_LE(paths.size(), 8u * 8u);
  for (const auto& path : paths) {
    EXPECT_GE(path.size(), 1u);
    EXPECT_LE(path.size(), 3u);
  }
}

TEST_P(SeedSweepTest, AucOfIvTopFeatureBeatsIvBottomFeature) {
  // Agreement between two independent signal measures: the feature with
  // the highest IV should (weakly) out-rank the lowest-IV feature as a
  // raw AUC scorer.
  auto data = data::MakeSyntheticDataset(SeededSpec(GetParam() + 100));
  ASSERT_TRUE(data.ok());
  const auto ivs = ComputeIvs(data->x, data->labels(), 10);
  size_t best = 0;
  size_t worst = 0;
  for (size_t c = 1; c < ivs.size(); ++c) {
    if (ivs[c] > ivs[best]) best = c;
    if (ivs[c] < ivs[worst]) worst = c;
  }
  auto auc_of = [&](size_t c) {
    auto auc = Auc(data->x.column(c).values(), data->labels());
    if (!auc.ok()) return 0.5;
    return std::max(*auc, 1.0 - *auc);  // direction-free separability
  };
  EXPECT_GE(auc_of(best) + 0.05, auc_of(worst));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace safe
