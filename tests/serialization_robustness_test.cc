// Robustness of the text deserializers: mutated / truncated / garbled
// inputs must produce a Status, never a crash or a silently-wrong model.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"
#include "src/core/engine.h"
#include "src/data/synthetic.h"
#include "src/gbdt/booster.h"

namespace safe {
namespace {

struct Artifacts {
  std::string plan_text;
  std::string booster_text;
};

const Artifacts& MakeArtifacts() {
  static const Artifacts artifacts = [] {
    data::SyntheticSpec spec;
    spec.num_rows = 600;
    spec.num_features = 6;
    spec.num_informative = 3;
    spec.num_interactions = 2;
    spec.seed = 21;
    auto data = data::MakeSyntheticDataset(spec);
    SAFE_CHECK(data.ok());
    SafeParams params;
    params.miner.num_trees = 8;
    params.ranker.num_trees = 8;
    SafeEngine engine(params);
    auto fit = engine.Fit(*data);
    SAFE_CHECK(fit.ok());
    gbdt::GbdtParams gb;
    gb.num_trees = 5;
    auto model = gbdt::Booster::Fit(*data, nullptr, gb);
    SAFE_CHECK(model.ok());
    return Artifacts{fit->plan.Serialize(), model->Serialize()};
  }();
  return artifacts;
}

TEST(SerializationRobustnessTest, TruncatedPlansFailCleanly) {
  const std::string& text = MakeArtifacts().plan_text;
  // Every truncation point either parses to a valid plan or errors.
  for (size_t len = 0; len < text.size(); len += 7) {
    auto result = FeaturePlan::Deserialize(text.substr(0, len));
    if (len < text.size() - 1) {
      // Truncations may accidentally remain valid only if they end at a
      // section boundary; anything else must be an error, never a crash.
      if (result.ok()) {
        EXPECT_LE(result->selected().size(), 100u);
      }
    }
  }
  SUCCEED();
}

TEST(SerializationRobustnessTest, TruncatedBoostersFailCleanly) {
  const std::string& text = MakeArtifacts().booster_text;
  for (size_t len = 0; len < text.size(); len += 11) {
    auto result = gbdt::Booster::Deserialize(text.substr(0, len));
    (void)result;  // must not crash; ok-or-error both acceptable
  }
  SUCCEED();
}

TEST(SerializationRobustnessTest, ByteMutationsNeverCrashPlanParser) {
  const std::string& text = MakeArtifacts().plan_text;
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = text;
    const size_t pos = rng.NextUint64Below(mutated.size());
    mutated[pos] = static_cast<char>('0' + rng.NextUint64Below(75));
    auto result = FeaturePlan::Deserialize(mutated);
    if (result.ok()) {
      // A mutation that survives parsing must still define a coherent
      // plan (names resolvable — Create() enforced it).
      EXPECT_EQ(result->selected().size(),
                result->selected().size());
    }
  }
  SUCCEED();
}

TEST(SerializationRobustnessTest, ByteMutationsNeverCrashBoosterParser) {
  const std::string& text = MakeArtifacts().booster_text;
  Rng rng(6);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = text;
    const size_t pos = rng.NextUint64Below(mutated.size());
    mutated[pos] = static_cast<char>('0' + rng.NextUint64Below(75));
    auto result = gbdt::Booster::Deserialize(mutated);
    (void)result;
  }
  SUCCEED();
}

TEST(SerializationRobustnessTest, LineShuffleFailsOrStaysCoherent) {
  // Swapping two random lines usually breaks section structure; the
  // parser must reject rather than misread.
  const std::string& text = MakeArtifacts().plan_text;
  std::vector<std::string> lines;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    auto shuffled = lines;
    const size_t a = rng.NextUint64Below(shuffled.size());
    const size_t b = rng.NextUint64Below(shuffled.size());
    std::swap(shuffled[a], shuffled[b]);
    std::string joined;
    for (const auto& line : shuffled) {
      joined += line;
      joined += '\n';
    }
    auto result = FeaturePlan::Deserialize(joined);
    (void)result;  // no crash is the contract
  }
  SUCCEED();
}

TEST(SerializationRobustnessTest, HugeCountsRejectedNotAllocated) {
  // A forged header claiming 10^12 inputs must fail fast (the parser
  // reads line-by-line and runs out of input), not try to allocate.
  auto result = FeaturePlan::Deserialize(
      "feature_plan v1\ninputs 1000000000000\nx\n");
  EXPECT_FALSE(result.ok());
  auto booster = gbdt::Booster::Deserialize(
      "booster v1\nobjective logistic\nnum_features 3\nbase_score 0\n"
      "num_trees 999999999\ntree 1\n-1 -1 -1 0 0 0 1\n");
  EXPECT_FALSE(booster.ok());
}

}  // namespace
}  // namespace safe
