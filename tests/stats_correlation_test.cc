#include "src/stats/correlation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"

namespace safe {
namespace {

TEST(PearsonBandTest, TableTwoBands) {
  EXPECT_EQ(ClassifyPearson(0.1), PearsonBand::kVeryWeak);
  EXPECT_EQ(ClassifyPearson(-0.3), PearsonBand::kWeak);
  EXPECT_EQ(ClassifyPearson(0.5), PearsonBand::kModerate);
  EXPECT_EQ(ClassifyPearson(-0.7), PearsonBand::kStrong);
  EXPECT_EQ(ClassifyPearson(0.95), PearsonBand::kExtremelyStrong);
  EXPECT_STREQ(PearsonBandName(PearsonBand::kExtremelyStrong),
               "Extremely strong correlation");
}

TEST(PearsonTest, PerfectLinearRelations) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> pos{2, 4, 6, 8, 10};
  std::vector<double> neg{5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(x, pos), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, AffineInvariance) {
  Rng rng(1);
  std::vector<double> x(500);
  std::vector<double> y(500);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.NextGaussian();
    y[i] = 0.7 * x[i] + 0.3 * rng.NextGaussian();
  }
  const double r = PearsonCorrelation(x, y);
  std::vector<double> scaled(x.size());
  for (size_t i = 0; i < x.size(); ++i) scaled[i] = 100.0 * y[i] - 3.0;
  EXPECT_NEAR(PearsonCorrelation(x, scaled), r, 1e-12);
}

TEST(PearsonTest, SymmetricInArguments) {
  Rng rng(2);
  std::vector<double> x(100);
  std::vector<double> y(100);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.NextGaussian();
    y[i] = rng.NextGaussian() + 0.5 * x[i];
  }
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), PearsonCorrelation(y, x));
}

TEST(PearsonTest, IndependentIsNearZero) {
  Rng rng(3);
  std::vector<double> x(20000);
  std::vector<double> y(20000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.NextGaussian();
    y[i] = rng.NextGaussian();
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 0.0, 0.03);
}

TEST(PearsonTest, ConstantFeatureIsZero) {
  std::vector<double> c(10, 5.0);
  std::vector<double> x{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(c, x), 0.0);
}

TEST(PearsonTest, SkipsMissingPairs) {
  std::vector<double> x{1, 2, std::nan(""), 4, 5};
  std::vector<double> y{2, 4, 100.0, 8, std::nan("")};
  // Paired non-missing rows are (1,2),(2,4),(4,8): perfectly linear.
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(PearsonTest, TooFewPairedRowsIsZero) {
  std::vector<double> x{1, std::nan("")};
  std::vector<double> y{2, 3.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(PearsonTest, BoundedInMinusOneOne) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> x(50);
    std::vector<double> y(50);
    for (size_t i = 0; i < x.size(); ++i) {
      x[i] = rng.NextGaussian() * 1e6;
      y[i] = x[i] + rng.NextGaussian() * 1e-6;  // near-perfect correlation
    }
    const double r = PearsonCorrelation(x, y);
    EXPECT_LE(r, 1.0);
    EXPECT_GE(r, -1.0);
  }
}

TEST(PearsonMatrixTest, SymmetricWithUnitDiagonal) {
  Rng rng(5);
  DataFrame frame;
  for (int c = 0; c < 5; ++c) {
    std::vector<double> col(200);
    for (double& v : col) v = rng.NextGaussian();
    ASSERT_TRUE(frame.AddColumn(Column("f" + std::to_string(c), col)).ok());
  }
  auto mat = PearsonMatrix(frame);
  ASSERT_EQ(mat.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(mat[i][i], 1.0);
    for (size_t j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(mat[i][j], mat[j][i]);
      EXPECT_DOUBLE_EQ(mat[i][j], PearsonCorrelation(
                                      frame.column(i).values(),
                                      frame.column(j).values()));
    }
  }
}

}  // namespace
}  // namespace safe
