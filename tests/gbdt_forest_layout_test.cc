// PackedForest (src/gbdt/forest_layout.h) must reproduce
// RegressionTree::PredictRow margins EXACTLY — same accumulation order,
// same bits — across randomized trees of depth 1..8, missing values
// routed in both directions, empty trees, the >64-leaf fallback layout,
// and remapped split features, for both the per-lane TreeMargin API and
// the whole-block AccumulateMargins traversal.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "src/common/random.h"
#include "src/gbdt/forest_layout.h"
#include "src/gbdt/tree.h"

namespace safe {
namespace gbdt {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

::testing::AssertionResult SameBits(double expected, double actual) {
  if (std::isnan(expected) && std::isnan(actual)) {
    return ::testing::AssertionSuccess();
  }
  if (Bits(expected) == Bits(actual)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "bits differ: expected=" << expected << " actual=" << actual;
}

/// Recursively grows a random subtree; interior split probability decays
/// with depth so the sweep covers stumps through full depth-8 trees.
int GrowNode(std::vector<TreeNode>* nodes, Rng* rng, int depth, int max_depth,
             int num_features) {
  const int idx = static_cast<int>(nodes->size());
  nodes->push_back(TreeNode{});
  const bool leaf =
      depth >= max_depth || (depth > 0 && rng->NextDouble() < 0.25);
  if (leaf) {
    (*nodes)[idx].value = rng->NextDouble() * 2.0 - 1.0;
    return idx;
  }
  const int feature =
      static_cast<int>(rng->NextUint64Below(static_cast<uint64_t>(num_features)));
  const double threshold = rng->NextDouble() * 2.0 - 1.0;
  const bool default_left = rng->NextDouble() < 0.5;
  const int left = GrowNode(nodes, rng, depth + 1, max_depth, num_features);
  const int right = GrowNode(nodes, rng, depth + 1, max_depth, num_features);
  (*nodes)[idx].feature = feature;
  (*nodes)[idx].threshold = threshold;
  (*nodes)[idx].default_left = default_left;
  (*nodes)[idx].left = left;
  (*nodes)[idx].right = right;
  return idx;
}

RegressionTree RandomTree(Rng* rng, int max_depth, int num_features) {
  std::vector<TreeNode> nodes;
  GrowNode(&nodes, rng, 0, max_depth, num_features);
  return RegressionTree(std::move(nodes));
}

/// Full binary tree of the given depth: depth 7 has 128 leaves, which
/// exceeds kMaxBitvectorLeaves and forces the fallback layout.
int GrowFullNode(std::vector<TreeNode>* nodes, Rng* rng, int depth,
                 int max_depth, int num_features) {
  const int idx = static_cast<int>(nodes->size());
  nodes->push_back(TreeNode{});
  if (depth >= max_depth) {
    (*nodes)[idx].value = rng->NextDouble() * 2.0 - 1.0;
    return idx;
  }
  const int feature =
      static_cast<int>(rng->NextUint64Below(static_cast<uint64_t>(num_features)));
  const double threshold = rng->NextDouble() * 2.0 - 1.0;
  const bool default_left = rng->NextDouble() < 0.5;
  const int left = GrowFullNode(nodes, rng, depth + 1, max_depth, num_features);
  const int right =
      GrowFullNode(nodes, rng, depth + 1, max_depth, num_features);
  (*nodes)[idx].feature = feature;
  (*nodes)[idx].threshold = threshold;
  (*nodes)[idx].default_left = default_left;
  (*nodes)[idx].left = left;
  (*nodes)[idx].right = right;
  return idx;
}

RegressionTree FullTree(Rng* rng, int depth, int num_features) {
  std::vector<TreeNode> nodes;
  GrowFullNode(&nodes, rng, 0, depth, num_features);
  return RegressionTree(std::move(nodes));
}

/// Random rows over [-1.2, 1.2] with a seed-dependent share of NaNs so
/// thresholds are straddled and missing routing fires on every tree.
std::vector<std::vector<double>> RandomRows(Rng* rng, size_t n,
                                            size_t num_features,
                                            double missing_rate) {
  std::vector<std::vector<double>> rows(n);
  for (auto& row : rows) {
    row.resize(num_features);
    for (double& v : row) {
      v = rng->NextDouble() < missing_rate ? kNaN
                                           : rng->NextDouble() * 2.4 - 1.2;
    }
  }
  return rows;
}

/// Slot-major panel of `rows`: feature f of lane i at panel[f*stride+i].
std::vector<double> ToPanel(const std::vector<std::vector<double>>& rows,
                            size_t num_features, size_t stride) {
  std::vector<double> panel(num_features * stride, 0.0);
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t f = 0; f < num_features; ++f) {
      panel[f * stride + i] = rows[i][f];
    }
  }
  return panel;
}

void CheckForestMatchesPredictRow(const std::vector<RegressionTree>& trees,
                                  size_t num_features,
                                  const std::vector<std::vector<double>>& rows) {
  auto forest = PackedForest::Build(trees, num_features);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();
  ASSERT_EQ(forest->num_trees(), trees.size());

  // Per-lane API, row addressing (stride 1, lane 0).
  for (size_t t = 0; t < trees.size(); ++t) {
    for (size_t r = 0; r < rows.size(); ++r) {
      EXPECT_TRUE(SameBits(trees[t].PredictRow(rows[r]),
                           forest->TreeMargin(t, rows[r].data(), 1, 0)))
          << "tree " << t << " row " << r;
    }
  }

  // Whole-block traversal against the exact scalar accumulation order:
  // margins must match base + tree_0 + tree_1 + ... summed sequentially.
  const size_t stride = rows.size() + 3;  // spare lanes must be ignored
  const std::vector<double> panel = ToPanel(rows, num_features, stride);
  const double base = 0.125;
  std::vector<double> margins(rows.size(), base);
  forest->AccumulateMargins(panel.data(), stride, rows.size(), margins.data());
  for (size_t r = 0; r < rows.size(); ++r) {
    double expected = base;
    for (const RegressionTree& tree : trees) expected += tree.PredictRow(rows[r]);
    EXPECT_TRUE(SameBits(expected, margins[r])) << "row " << r;
  }
}

TEST(PackedForestTest, RandomTreesDepth1Through8MatchPredictRow) {
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    const size_t num_features = 6;
    std::vector<RegressionTree> trees;
    for (int depth = 1; depth <= 8; ++depth) {
      trees.push_back(RandomTree(&rng, depth, static_cast<int>(num_features)));
    }
    const double missing_rate = (seed % 2 == 0) ? 0.3 : 0.0;
    const auto rows = RandomRows(&rng, 150, num_features, missing_rate);
    CheckForestMatchesPredictRow(trees, num_features, rows);
  }
}

TEST(PackedForestTest, MissingRoutesBothDirections) {
  // One split each way: default-left sends NaN to the left leaf (-1),
  // default-right to the right leaf (+1).
  for (const bool default_left : {true, false}) {
    SCOPED_TRACE(default_left ? "default_left" : "default_right");
    std::vector<TreeNode> nodes(3);
    nodes[0].left = 1;
    nodes[0].right = 2;
    nodes[0].feature = 0;
    nodes[0].threshold = 0.5;
    nodes[0].default_left = default_left;
    nodes[1].value = -1.0;
    nodes[2].value = 1.0;
    const std::vector<RegressionTree> trees = {RegressionTree(nodes)};
    auto forest = PackedForest::Build(trees, 1);
    ASSERT_TRUE(forest.ok()) << forest.status().ToString();

    const std::vector<std::vector<double>> rows = {{kNaN}, {0.25}, {0.75}};
    CheckForestMatchesPredictRow(trees, 1, rows);
    const double missing = forest->TreeMargin(0, rows[0].data(), 1, 0);
    EXPECT_EQ(missing, default_left ? -1.0 : 1.0);
    // Non-missing routing is unaffected by the default.
    EXPECT_EQ(forest->TreeMargin(0, rows[1].data(), 1, 0), -1.0);
    EXPECT_EQ(forest->TreeMargin(0, rows[2].data(), 1, 0), 1.0);
  }
}

TEST(PackedForestTest, EmptyTreesContributeZero) {
  Rng rng(7);
  std::vector<RegressionTree> trees;
  trees.push_back(RegressionTree());  // empty
  trees.push_back(RandomTree(&rng, 3, 4));
  trees.push_back(RegressionTree());  // empty
  const auto rows = RandomRows(&rng, 40, 4, 0.2);
  CheckForestMatchesPredictRow(trees, 4, rows);

  auto forest = PackedForest::Build(trees, 4);
  ASSERT_TRUE(forest.ok());
  EXPECT_EQ(forest->TreeMargin(0, rows[0].data(), 1, 0), 0.0);
  EXPECT_EQ(forest->TreeMargin(2, rows[0].data(), 1, 0), 0.0);
}

TEST(PackedForestTest, DeepTreesUseFallbackLayoutAndStillMatch) {
  Rng rng(11);
  const size_t num_features = 5;
  std::vector<RegressionTree> trees;
  // 128 leaves: over the bitvector limit, must take the fallback layout.
  trees.push_back(FullTree(&rng, 7, static_cast<int>(num_features)));
  // 64 leaves: exactly at the limit, must stay bitvector.
  trees.push_back(FullTree(&rng, 6, static_cast<int>(num_features)));
  auto forest = PackedForest::Build(trees, num_features);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();
  EXPECT_FALSE(forest->tree_uses_bitvector(0));
  EXPECT_TRUE(forest->tree_uses_bitvector(1));

  const auto rows = RandomRows(&rng, 100, num_features, 0.25);
  CheckForestMatchesPredictRow(trees, num_features, rows);
}

TEST(PackedForestTest, BuildRejectsOutOfRangeSplitFeature) {
  std::vector<TreeNode> nodes(3);
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[0].feature = 5;
  nodes[1].value = 0.0;
  nodes[2].value = 1.0;
  const std::vector<RegressionTree> trees = {RegressionTree(nodes)};
  EXPECT_FALSE(PackedForest::Build(trees, 5).ok());  // 5 is out of [0, 5)
  EXPECT_FALSE(PackedForest::Build(trees, 3).ok());
  EXPECT_TRUE(PackedForest::Build(trees, 6).ok());
}

TEST(PackedForestTest, FeatureMapRemapsSplitsToPanelSlots) {
  Rng rng(13);
  const size_t num_features = 4;
  std::vector<RegressionTree> trees;
  for (int depth = 2; depth <= 5; ++depth) {
    trees.push_back(RandomTree(&rng, depth, static_cast<int>(num_features)));
  }
  // Scatter the 4 features across 9 panel slots.
  const std::vector<uint32_t> feature_map = {7, 0, 4, 2};
  auto forest = PackedForest::Build(trees, num_features, &feature_map);
  ASSERT_TRUE(forest.ok()) << forest.status().ToString();

  const auto rows = RandomRows(&rng, 60, num_features, 0.2);
  const size_t stride = rows.size();
  std::vector<double> panel(9 * stride, kNaN);  // unmapped slots poisoned
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t f = 0; f < num_features; ++f) {
      panel[feature_map[f] * stride + i] = rows[i][f];
    }
  }
  for (size_t t = 0; t < trees.size(); ++t) {
    for (size_t r = 0; r < rows.size(); ++r) {
      EXPECT_TRUE(SameBits(trees[t].PredictRow(rows[r]),
                           forest->TreeMargin(t, panel.data(), stride, r)))
          << "tree " << t << " row " << r;
    }
  }
  std::vector<double> margins(rows.size(), 0.0);
  forest->AccumulateMargins(panel.data(), stride, rows.size(), margins.data());
  for (size_t r = 0; r < rows.size(); ++r) {
    double expected = 0.0;
    for (const RegressionTree& tree : trees) expected += tree.PredictRow(rows[r]);
    EXPECT_TRUE(SameBits(expected, margins[r])) << "row " << r;
  }
}

TEST(PackedForestTest, BuildRejectsUndersizedFeatureMap) {
  Rng rng(17);
  const std::vector<RegressionTree> trees = {RandomTree(&rng, 3, 4)};
  const std::vector<uint32_t> too_small = {0, 1, 2};
  EXPECT_FALSE(PackedForest::Build(trees, 4, &too_small).ok());
}

}  // namespace
}  // namespace gbdt
}  // namespace safe
