#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/data/synthetic.h"
#include "src/obs/trace.h"

namespace safe {
namespace {

data::SyntheticSpec QuickSpec() {
  data::SyntheticSpec spec;
  spec.num_rows = 1500;
  spec.num_features = 8;
  spec.num_informative = 4;
  spec.num_interactions = 3;
  spec.seed = 99;
  return spec;
}

SafeParams QuickParams() {
  SafeParams params;
  params.miner.num_trees = 10;
  params.miner.max_depth = 3;
  params.ranker.num_trees = 10;
  params.ranker.max_depth = 3;
  params.seed = 11;
  return params;
}

Result<SafeFitResult> FitOnce() {
  auto data = data::MakeSyntheticDataset(QuickSpec());
  if (!data.ok()) return data.status();
  SafeEngine engine(QuickParams());
  return engine.Fit(*data);
}

TEST(SafeEngineTelemetryTest, StageTimingsAreMonotoneAndNonOverlapping) {
  auto result = FitOnce();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result->iterations.empty());
  for (const auto& diag : result->iterations) {
    ASSERT_FALSE(diag.stages.empty());
    double previous_end = 0.0;
    for (const auto& stage : diag.stages) {
      EXPECT_FALSE(stage.stage.empty());
      EXPECT_GE(stage.seconds, 0.0);
      // Stages run sequentially, so each one starts at or after the end
      // of the one before it, and all fit inside the iteration.
      EXPECT_GE(stage.start_seconds, previous_end);
      previous_end = stage.start_seconds + stage.seconds;
    }
    EXPECT_LE(previous_end, diag.seconds + 1e-6);
  }
}

TEST(SafeEngineTelemetryTest, StageNamesCoverThePipeline) {
  auto result = FitOnce();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const char* kExpected[] = {"mine_combinations", "generate_features",
                             "candidate_pool",    "iv_filter",
                             "redundancy_filter", "importance_rank"};
  for (const auto& diag : result->iterations) {
    std::vector<std::string> names;
    for (const auto& stage : diag.stages) names.push_back(stage.stage);
    for (const char* expected : kExpected) {
      EXPECT_NE(std::find(names.begin(), names.end(), expected),
                names.end())
          << "missing stage " << expected;
    }
  }
}

TEST(SafeEngineTelemetryTest, FunnelCountsAreOrdered) {
  auto result = FitOnce();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& diag : result->iterations) {
    // Each selection stage can only discard features, so the funnel
    // shrinks: candidates >= after IV >= after redundancy >= selected.
    EXPECT_GE(diag.num_candidates, diag.num_after_iv);
    EXPECT_GE(diag.num_after_iv, diag.num_after_redundancy);
    EXPECT_GE(diag.num_after_redundancy, diag.num_selected);
    EXPECT_GT(diag.num_candidates, 0u);
    EXPECT_GT(diag.num_selected, 0u);
  }
}

#if SAFE_TELEMETRY_ENABLED

TEST(SafeEngineTelemetryTest, FitEmitsNestedSpansForEveryStage) {
  obs::Tracer::Global()->Reset();
  auto result = FitOnce();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::vector<obs::SpanRecord> spans = obs::Tracer::Global()->Snapshot();

  auto find = [&](const std::string& name) -> const obs::SpanRecord* {
    for (const auto& s : spans) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  const obs::SpanRecord* fit = find("engine.fit");
  const obs::SpanRecord* iteration = find("engine.iteration");
  ASSERT_NE(fit, nullptr);
  ASSERT_NE(iteration, nullptr);
  EXPECT_LT(fit->depth, iteration->depth);

  const char* kStageSpans[] = {
      "engine.mine_combinations", "engine.generate_features",
      "engine.iv_filter", "engine.redundancy_filter",
      "engine.importance_rank"};
  for (const char* name : kStageSpans) {
    const obs::SpanRecord* stage = find(name);
    ASSERT_NE(stage, nullptr) << "missing span " << name;
    // Stage spans nest inside the iteration span.
    EXPECT_GT(stage->depth, iteration->depth);
    EXPECT_GE(stage->start_ns, iteration->start_ns);
    EXPECT_LE(stage->start_ns + stage->duration_ns,
              iteration->start_ns + iteration->duration_ns);
  }
  obs::Tracer::Global()->Reset();
}

#endif  // SAFE_TELEMETRY_ENABLED

}  // namespace
}  // namespace safe
