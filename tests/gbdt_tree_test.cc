#include "src/gbdt/tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace safe {
namespace gbdt {
namespace {

// A small hand-built tree:
//   root: f0 <= 1.0 ? node1 : leaf(0.3)
//   node1: f1 <= 2.0 ? leaf(-1.0) : leaf(0.5)
RegressionTree MakeTree() {
  std::vector<TreeNode> nodes(5);
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[0].feature = 0;
  nodes[0].threshold = 1.0;
  nodes[0].gain = 2.0;
  nodes[0].default_left = true;
  nodes[1].left = 3;
  nodes[1].right = 4;
  nodes[1].feature = 1;
  nodes[1].threshold = 2.0;
  nodes[1].gain = 1.0;
  nodes[1].default_left = false;
  nodes[2].value = 0.3;
  nodes[3].value = -1.0;
  nodes[4].value = 0.5;
  return RegressionTree(std::move(nodes));
}

TEST(TreeTest, PredictRoutesCorrectly) {
  RegressionTree tree = MakeTree();
  EXPECT_DOUBLE_EQ(tree.PredictRow({0.5, 1.0}), -1.0);
  EXPECT_DOUBLE_EQ(tree.PredictRow({0.5, 3.0}), 0.5);
  EXPECT_DOUBLE_EQ(tree.PredictRow({2.0, 0.0}), 0.3);
  // Boundary: x <= threshold goes left.
  EXPECT_DOUBLE_EQ(tree.PredictRow({1.0, 2.0}), -1.0);
}

TEST(TreeTest, MissingFollowsDefaultDirection) {
  RegressionTree tree = MakeTree();
  const double nan = std::nan("");
  // Root default_left=true -> down to f1; f1 default_left=false -> 0.5.
  EXPECT_DOUBLE_EQ(tree.PredictRow({nan, nan}), 0.5);
  EXPECT_DOUBLE_EQ(tree.PredictRow({nan, 1.0}), -1.0);
}

TEST(TreeTest, EmptyTreePredictsZero) {
  RegressionTree tree;
  EXPECT_DOUBLE_EQ(tree.PredictRow({1.0, 2.0}), 0.0);
  EXPECT_TRUE(tree.ExtractPaths().empty());
}

TEST(TreeTest, SingleLeafHasNoPaths) {
  std::vector<TreeNode> nodes(1);
  nodes[0].value = 0.7;
  RegressionTree tree(std::move(nodes));
  EXPECT_TRUE(tree.ExtractPaths().empty());
}

TEST(TreeTest, ExtractPathsEnumeratesRootToLeaf) {
  RegressionTree tree = MakeTree();
  auto paths = tree.ExtractPaths();
  ASSERT_EQ(paths.size(), 3u);  // three leaves
  // Each path starts at the root split (feature 0).
  for (const auto& path : paths) {
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path[0].feature, 0);
    EXPECT_DOUBLE_EQ(path[0].threshold, 1.0);
  }
  // Exactly two paths pass through the f1 split.
  int deep = 0;
  for (const auto& path : paths) {
    if (path.size() == 2) {
      ++deep;
      EXPECT_EQ(path[1].feature, 1);
    }
  }
  EXPECT_EQ(deep, 2);
}

TEST(TreeTest, SerializeRoundTrips) {
  RegressionTree tree = MakeTree();
  std::string text = tree.Serialize();
  auto back = RegressionTree::Deserialize(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->nodes().size(), tree.nodes().size());
  for (size_t i = 0; i < tree.nodes().size(); ++i) {
    const TreeNode& a = tree.nodes()[i];
    const TreeNode& b = back->nodes()[i];
    EXPECT_EQ(a.left, b.left);
    EXPECT_EQ(a.right, b.right);
    EXPECT_EQ(a.feature, b.feature);
    EXPECT_DOUBLE_EQ(a.threshold, b.threshold);
    EXPECT_DOUBLE_EQ(a.value, b.value);
    EXPECT_DOUBLE_EQ(a.gain, b.gain);
    EXPECT_EQ(a.default_left, b.default_left);
  }
  // Behavioural equality.
  for (double x0 : {0.0, 1.5}) {
    for (double x1 : {1.0, 3.0}) {
      EXPECT_DOUBLE_EQ(tree.PredictRow({x0, x1}),
                       back->PredictRow({x0, x1}));
    }
  }
}

TEST(TreeTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(RegressionTree::Deserialize("nonsense").ok());
  EXPECT_FALSE(RegressionTree::Deserialize("tree 2\n0 0 0 0 0 0 1\n").ok());
}

}  // namespace
}  // namespace gbdt
}  // namespace safe
