// Edge-case suite for the obs::JsonValue parser/serializer: escape
// handling (including \uXXXX re-encoding to UTF-8), the recursion depth
// limit, rejection of malformed documents with positioned error
// messages, large-integer round-trips, and a full trace-document round
// trip through the Chrome-trace exporter. The parser backs both the
// RunReport tests and the CI trace artifact, so "almost JSON" inputs
// must fail loudly rather than parse into something surprising.

#include "src/obs/json.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/trace_export.h"

namespace safe {
namespace obs {
namespace {

JsonValue ParseOk(const std::string& text) {
  JsonValue out;
  std::string error;
  EXPECT_TRUE(JsonValue::Parse(text, &out, &error)) << text << ": " << error;
  return out;
}

std::string ParseError(const std::string& text) {
  JsonValue out;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse(text, &out, &error))
      << "unexpectedly parsed: " << text;
  EXPECT_FALSE(error.empty()) << "rejection must carry an error message";
  return error;
}

// --- Escapes ---

TEST(JsonParseTest, SimpleEscapesDecode) {
  const JsonValue v = ParseOk(R"("a\"b\\c\/d\ne\rf\tg\bh\fi")");
  EXPECT_EQ(v.string_value(), "a\"b\\c/d\ne\rf\tg\bh\fi");
}

TEST(JsonParseTest, EscapedStringsRoundTripThroughSerialize) {
  const JsonValue v(std::string("quote\" slash\\ tab\t newline\n ctrl\x01"));
  JsonValue back;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(v.Serialize(/*indent=*/-1), &back, &error))
      << error;
  EXPECT_EQ(back, v);
}

TEST(JsonParseTest, UnicodeEscapesDecodeToUtf8) {
  // One code point from each UTF-8 length class the decoder handles.
  EXPECT_EQ(ParseOk("\"\\u0041\"").string_value(), "A");
  EXPECT_EQ(ParseOk("\"\\u00e9\"").string_value(), "\xC3\xA9");      // é
  EXPECT_EQ(ParseOk("\"\\u20ac\"").string_value(), "\xE2\x82\xAC");  // €
  // Uppercase hex digits are accepted too.
  EXPECT_EQ(ParseOk("\"\\u20AC\"").string_value(), "\xE2\x82\xAC");
}

TEST(JsonParseTest, BadEscapesAreRejected) {
  EXPECT_NE(ParseError(R"("\x41")").find("unknown escape"),
            std::string::npos);
  EXPECT_NE(ParseError(R"("\u12")").find("truncated"), std::string::npos);
  EXPECT_NE(ParseError(R"("\uZZZZ")").find("bad \\u"), std::string::npos);
  EXPECT_NE(ParseError(R"("no closing quote)").find("unterminated"),
            std::string::npos);
}

// --- Depth limit ---

std::string Nested(size_t levels) {
  std::string text;
  text.append(levels, '[');
  text.append(levels, ']');
  return text;
}

TEST(JsonParseTest, DeepNestingParsesUpToTheLimit) {
  // kMaxDepth = 64: the innermost value of L nested arrays sits at
  // depth L-1, so 65 levels parse and 66 do not.
  ParseOk(Nested(60));
  ParseOk(Nested(65));
}

TEST(JsonParseTest, NestingBeyondTheLimitIsRejected) {
  EXPECT_NE(ParseError(Nested(66)).find("nesting too deep"),
            std::string::npos);
  EXPECT_NE(ParseError(Nested(100)).find("nesting too deep"),
            std::string::npos);
  // Mixed object/array nesting counts against the same budget.
  std::string mixed;
  for (int i = 0; i < 40; ++i) mixed += R"({"k":[)";
  mixed += "1";
  for (int i = 0; i < 40; ++i) mixed += "]}";
  EXPECT_NE(ParseError(mixed).find("nesting too deep"), std::string::npos);
}

// --- Malformed documents ---

TEST(JsonParseTest, MalformedInputsAreRejected) {
  ParseError("");
  ParseError("   ");
  ParseError("bareword");
  ParseError("nul");           // truncated literal
  ParseError("[1,]");          // trailing comma
  ParseError("[1 2]");         // missing comma
  ParseError(R"({"a" 1})");    // missing colon
  ParseError(R"({"a":})");     // missing value
  ParseError(R"({"a":1)");     // unterminated object
  ParseError(R"({a: 1})");     // unquoted key
  ParseError("[1, 2");         // unterminated array
  EXPECT_NE(ParseError("{} extra").find("trailing"), std::string::npos);
  EXPECT_NE(ParseError("1 2").find("trailing"), std::string::npos);
}

TEST(JsonParseTest, ErrorsReportAnOffset) {
  EXPECT_NE(ParseError("[1,]").find("at offset"), std::string::npos);
}

// --- Numbers ---

TEST(JsonParseTest, LargeIntegersRoundTripExactly) {
  // 2^53 is the largest power of two a double holds exactly alongside
  // all smaller integers; the report serializer prints it integrally.
  const double big = 9007199254740992.0;  // 2^53
  JsonValue doc = JsonValue::Object();
  doc.Set("count", JsonValue(big));
  doc.Set("neg", JsonValue(-big));
  doc.Set("frac", JsonValue(0.1));
  JsonValue back;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(doc.Serialize(), &back, &error)) << error;
  EXPECT_EQ(back, doc);
  EXPECT_EQ(back.Find("count")->number_value(), big);
  EXPECT_EQ(back.Find("frac")->number_value(), 0.1);
}

TEST(JsonParseTest, ParsesScientificNotationAndSignedNumbers) {
  EXPECT_EQ(ParseOk("1e3").number_value(), 1000.0);
  EXPECT_EQ(ParseOk("-2.5e-2").number_value(), -0.025);
  EXPECT_EQ(ParseOk("-0").number_value(), 0.0);
}

// --- Whitespace and ordering ---

TEST(JsonParseTest, WhitespaceIsInsignificant) {
  const JsonValue v = ParseOk(" {\n\t\"a\" :\r [ 1 , 2 ] , \"b\" : null } ");
  ASSERT_EQ(v.members().size(), 2u);
  EXPECT_EQ(v.members()[0].first, "a");
  EXPECT_EQ(v.Find("a")->items().size(), 2u);
  EXPECT_TRUE(v.Find("b")->is_null());
}

TEST(JsonParseTest, ObjectOrderSurvivesAndMattersForEquality) {
  const JsonValue ab = ParseOk(R"({"a":1,"b":2})");
  const JsonValue ba = ParseOk(R"({"b":2,"a":1})");
  EXPECT_NE(ab, ba);  // reports are byte-stable, so order is semantic
  EXPECT_EQ(ab.members()[0].first, "a");
  EXPECT_EQ(ba.members()[0].first, "b");
}

// --- Trace-document round trip (export path is ungated, so this runs
// in telemetry-off builds too) ---

TEST(JsonParseTest, ChromeTraceDocumentRoundTrips) {
  ThreadTimeline timeline;
  timeline.thread_index = 2;
  timeline.label = "main";
  TraceEvent begin;
  begin.ts_ns = 1500;
  begin.name = "phase \"quoted\"\n";  // exporter must escape span names
  begin.type = TraceEventType::kBegin;
  TraceEvent end = begin;
  end.ts_ns = 2500;
  end.type = TraceEventType::kEnd;
  timeline.events = {begin, end};

  const JsonValue doc = ChromeTraceJson({timeline});
  for (int indent : {-1, 0, 2}) {
    JsonValue back;
    std::string error;
    ASSERT_TRUE(JsonValue::Parse(doc.Serialize(indent), &back, &error))
        << "indent " << indent << ": " << error;
    EXPECT_EQ(back, doc) << "indent " << indent;
  }
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 3u);  // metadata + B + E
  EXPECT_EQ(events->items()[1].Find("name")->string_value(),
            "phase \"quoted\"\n");
}

}  // namespace
}  // namespace obs
}  // namespace safe
