#include "src/stats/auc.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace safe {
namespace {

TEST(AucTest, PerfectRankingIsOne) {
  std::vector<double> scores{0.1, 0.2, 0.8, 0.9};
  std::vector<double> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(*Auc(scores, labels), 1.0);
}

TEST(AucTest, InvertedRankingIsZero) {
  std::vector<double> scores{0.9, 0.8, 0.2, 0.1};
  std::vector<double> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(*Auc(scores, labels), 0.0);
}

TEST(AucTest, ConstantScoresAreHalf) {
  std::vector<double> scores(10, 0.5);
  std::vector<double> labels{0, 1, 0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(*Auc(scores, labels), 0.5);
}

TEST(AucTest, TiesGetMidrankCredit) {
  // One positive tied with one negative at the top: AUC = 0.75.
  std::vector<double> scores{0.9, 0.9, 0.1, 0.1};
  std::vector<double> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(*Auc(scores, labels), 0.5);
  std::vector<double> scores2{0.9, 0.9, 0.1};
  std::vector<double> labels2{1, 0, 0};
  EXPECT_DOUBLE_EQ(*Auc(scores2, labels2), 0.75);
}

TEST(AucTest, ComplementAntisymmetry) {
  // AUC(scores, y) + AUC(-scores, y) == 1.
  Rng rng(1);
  std::vector<double> scores(200);
  std::vector<double> labels(200);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.NextGaussian();
    labels[i] = rng.NextBernoulli(0.4) ? 1.0 : 0.0;
  }
  std::vector<double> negated(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) negated[i] = -scores[i];
  EXPECT_NEAR(*Auc(scores, labels) + *Auc(negated, labels), 1.0, 1e-12);
}

TEST(AucTest, InvariantToMonotoneTransform) {
  Rng rng(2);
  std::vector<double> scores(300);
  std::vector<double> labels(300);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.NextUniform(0.0, 1.0);
    labels[i] = rng.NextBernoulli(scores[i]) ? 1.0 : 0.0;
  }
  std::vector<double> transformed(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    transformed[i] = scores[i] * scores[i] * scores[i] + 5.0;
  }
  EXPECT_NEAR(*Auc(scores, labels), *Auc(transformed, labels), 1e-12);
}

TEST(AucTest, MatchesBruteForcePairCount) {
  Rng rng(3);
  std::vector<double> scores(80);
  std::vector<double> labels(80);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.NextInt(0, 9);  // plenty of ties
    labels[i] = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
  }
  double wins = 0.0;
  double pairs = 0.0;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] < 0.5) continue;
    for (size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] > 0.5) continue;
      pairs += 1.0;
      if (scores[i] > scores[j]) {
        wins += 1.0;
      } else if (scores[i] == scores[j]) {
        wins += 0.5;
      }
    }
  }
  EXPECT_NEAR(*Auc(scores, labels), wins / pairs, 1e-12);
}

TEST(AucTest, ErrorCases) {
  EXPECT_FALSE(Auc({}, {}).ok());
  EXPECT_FALSE(Auc({0.1, 0.2}, {1.0}).ok());
  EXPECT_FALSE(Auc({0.1, 0.2}, {1.0, 1.0}).ok());  // single class
  EXPECT_FALSE(Auc({0.1, 0.2}, {0.0, 0.0}).ok());
}

}  // namespace
}  // namespace safe
