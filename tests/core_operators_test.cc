#include "src/core/operators.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safe {
namespace {

class OperatorFixture : public ::testing::Test {
 protected:
  OperatorRegistry registry_ = OperatorRegistry::Default();

  double Apply1(const std::string& name, double a,
                const std::vector<double>& params = {}) {
    auto op = registry_.Find(name);
    EXPECT_TRUE(op.ok()) << name;
    double in[1] = {a};
    return (*op)->Apply(in, params);
  }
  double Apply2(const std::string& name, double a, double b,
                const std::vector<double>& params = {}) {
    auto op = registry_.Find(name);
    EXPECT_TRUE(op.ok()) << name;
    double in[2] = {a, b};
    return (*op)->Apply(in, params);
  }
};

TEST_F(OperatorFixture, ArithmeticBasics) {
  EXPECT_DOUBLE_EQ(Apply2("add", 2, 3), 5.0);
  EXPECT_DOUBLE_EQ(Apply2("sub", 2, 3), -1.0);
  EXPECT_DOUBLE_EQ(Apply2("mul", 2, 3), 6.0);
  EXPECT_DOUBLE_EQ(Apply2("div", 6, 3), 2.0);
}

TEST_F(OperatorFixture, DivisionByZeroIsNaN) {
  EXPECT_TRUE(std::isnan(Apply2("div", 1, 0)));
}

TEST_F(OperatorFixture, DivIsNonCommutative) {
  auto op = registry_.Find("div");
  ASSERT_TRUE(op.ok());
  EXPECT_FALSE((*op)->commutative());
  auto add = registry_.Find("add");
  ASSERT_TRUE(add.ok());
  EXPECT_TRUE((*add)->commutative());
}

TEST_F(OperatorFixture, UnaryMathGuards) {
  EXPECT_DOUBLE_EQ(Apply1("log", std::exp(2.0)), 2.0);
  EXPECT_TRUE(std::isnan(Apply1("log", -1.0)));
  EXPECT_TRUE(std::isnan(Apply1("log", 0.0)));
  EXPECT_DOUBLE_EQ(Apply1("sqrt", 9.0), 3.0);
  EXPECT_TRUE(std::isnan(Apply1("sqrt", -4.0)));
  EXPECT_DOUBLE_EQ(Apply1("square", -3.0), 9.0);
  EXPECT_DOUBLE_EQ(Apply1("abs", -2.5), 2.5);
  EXPECT_DOUBLE_EQ(Apply1("round", 2.6), 3.0);
  EXPECT_DOUBLE_EQ(Apply1("sigmoid", 0.0), 0.5);
  EXPECT_NEAR(Apply1("tanh", 100.0), 1.0, 1e-9);
}

TEST_F(OperatorFixture, LogicalOps) {
  EXPECT_DOUBLE_EQ(Apply2("and", 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(Apply2("and", 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(Apply2("or", 0, 1), 1.0);
  EXPECT_DOUBLE_EQ(Apply2("xor", 1, 1), 0.0);
  EXPECT_DOUBLE_EQ(Apply2("xor", 1, 0), 1.0);
}

TEST_F(OperatorFixture, ZscoreFitsAndApplies) {
  auto op = registry_.Find("zscore");
  ASSERT_TRUE(op.ok());
  std::vector<double> col{2, 4, 6, 8};
  auto params = (*op)->FitParams({&col});
  ASSERT_TRUE(params.ok());
  EXPECT_DOUBLE_EQ(Apply1("zscore", 5.0, *params), 0.0);
  // Symmetric around the mean.
  EXPECT_DOUBLE_EQ(Apply1("zscore", 8.0, *params),
                   -Apply1("zscore", 2.0, *params));
}

TEST_F(OperatorFixture, MinMaxFitsAndApplies) {
  auto op = registry_.Find("minmax");
  ASSERT_TRUE(op.ok());
  std::vector<double> col{10, 20, 30};
  auto params = (*op)->FitParams({&col});
  ASSERT_TRUE(params.ok());
  EXPECT_DOUBLE_EQ(Apply1("minmax", 10.0, *params), 0.0);
  EXPECT_DOUBLE_EQ(Apply1("minmax", 30.0, *params), 1.0);
  EXPECT_DOUBLE_EQ(Apply1("minmax", 20.0, *params), 0.5);
}

TEST_F(OperatorFixture, DiscretizeBinsValues) {
  auto op = registry_.Find("discretize");
  ASSERT_TRUE(op.ok());
  std::vector<double> col;
  for (int i = 0; i < 100; ++i) col.push_back(static_cast<double>(i));
  auto params = (*op)->FitParams({&col});
  ASSERT_TRUE(params.ok());
  const double low_bin = Apply1("discretize", 0.0, *params);
  const double high_bin = Apply1("discretize", 99.0, *params);
  EXPECT_LT(low_bin, high_bin);
  EXPECT_DOUBLE_EQ(low_bin, 0.0);
}

TEST_F(OperatorFixture, GroupByMeanAggregates) {
  auto op = registry_.Find("gbmean");
  ASSERT_TRUE(op.ok());
  // Key 0 -> values near 10, key 100 -> values near 20.
  std::vector<double> keys;
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) {
    keys.push_back(0.0);
    values.push_back(10.0);
    keys.push_back(100.0);
    values.push_back(20.0);
  }
  auto params = (*op)->FitParams({&keys, &values});
  ASSERT_TRUE(params.ok());
  double in_low[2] = {0.0, 0.0};
  double in_high[2] = {100.0, 0.0};
  EXPECT_DOUBLE_EQ((*op)->Apply(in_low, *params), 10.0);
  EXPECT_DOUBLE_EQ((*op)->Apply(in_high, *params), 20.0);
}

TEST_F(OperatorFixture, GroupByCountCounts) {
  auto op = registry_.Find("gbcount");
  ASSERT_TRUE(op.ok());
  std::vector<double> keys(100, 1.0);
  std::vector<double> values(100, 0.0);
  auto params = (*op)->FitParams({&keys, &values});
  ASSERT_TRUE(params.ok());
  double in[2] = {1.0, 0.0};
  EXPECT_DOUBLE_EQ((*op)->Apply(in, *params), 100.0);
}

TEST_F(OperatorFixture, ConditionalSelects) {
  auto op = registry_.Find("cond");
  ASSERT_TRUE(op.ok());
  double pos[3] = {1.0, 10.0, 20.0};
  double neg[3] = {-1.0, 10.0, 20.0};
  EXPECT_DOUBLE_EQ((*op)->Apply(pos, {}), 10.0);
  EXPECT_DOUBLE_EQ((*op)->Apply(neg, {}), 20.0);
}

TEST(ApplyOperatorTest, PropagatesNaNForNonGroupOps) {
  OperatorRegistry registry = OperatorRegistry::Arithmetic();
  auto op = registry.Find("add");
  ASSERT_TRUE(op.ok());
  std::vector<double> a{1.0, std::nan(""), 3.0};
  std::vector<double> b{2.0, 2.0, std::nan("")};
  auto out = ApplyOperator(**op, {}, {&a, &b});
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[0], 3.0);
  EXPECT_TRUE(std::isnan((*out)[1]));
  EXPECT_TRUE(std::isnan((*out)[2]));
}

TEST(ApplyOperatorTest, ValidatesArityAndLength) {
  OperatorRegistry registry = OperatorRegistry::Arithmetic();
  auto op = registry.Find("add");
  ASSERT_TRUE(op.ok());
  std::vector<double> a{1.0, 2.0};
  std::vector<double> short_b{1.0};
  EXPECT_FALSE(ApplyOperator(**op, {}, {&a}).ok());
  EXPECT_FALSE(ApplyOperator(**op, {}, {&a, &short_b}).ok());
}

TEST(RegistryTest, DefaultHasAllFamilies) {
  OperatorRegistry registry = OperatorRegistry::Default();
  for (const char* name :
       {"add", "sub", "mul", "div", "and", "or", "xor", "log", "sqrt",
        "square", "sigmoid", "tanh", "round", "abs", "zscore", "minmax",
        "discretize", "gbmean", "gbmax", "gbmin", "gbstd", "gbcount",
        "cond"}) {
    EXPECT_TRUE(registry.Find(name).ok()) << name;
  }
  EXPECT_EQ(registry.OfArity(3).size(), 1u);
  EXPECT_FALSE(registry.Find("nope").ok());
}

TEST(RegistryTest, ArithmeticHasExactlyFour) {
  OperatorRegistry registry = OperatorRegistry::Arithmetic();
  EXPECT_EQ(registry.size(), 4u);
  EXPECT_EQ(registry.OfArity(2).size(), 4u);
  EXPECT_TRUE(registry.OfArity(1).empty());
}

class DoubleOp : public Operator {
 public:
  std::string name() const override { return "double"; }
  size_t arity() const override { return 1; }
  double Apply(const double* in, const std::vector<double>&) const override {
    return 2.0 * in[0];
  }
};

TEST(RegistryTest, CustomOperatorRegisters) {
  OperatorRegistry registry = OperatorRegistry::Arithmetic();
  ASSERT_TRUE(registry.Register(std::make_shared<DoubleOp>()).ok());
  auto op = registry.Find("double");
  ASSERT_TRUE(op.ok());
  double in[1] = {21.0};
  EXPECT_DOUBLE_EQ((*op)->Apply(in, {}), 42.0);
  // Duplicate registration fails.
  EXPECT_EQ(registry.Register(std::make_shared<DoubleOp>()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(registry.Register(nullptr).ok());
}

}  // namespace
}  // namespace safe
