#include "src/dataframe/split.h"

#include <gtest/gtest.h>

#include <set>

namespace safe {
namespace {

Dataset MakeData(size_t n) {
  DataFrame f;
  std::vector<double> ids(n);
  std::vector<double> labels(n);
  for (size_t i = 0; i < n; ++i) {
    ids[i] = static_cast<double>(i);
    labels[i] = static_cast<double>(i % 2);
  }
  EXPECT_TRUE(f.AddColumn(Column("id", std::move(ids))).ok());
  return *MakeDataset(std::move(f), std::move(labels));
}

TEST(SplitTest, SizesRespected) {
  Dataset data = MakeData(100);
  auto split = SplitDataset(data, 60, 20, 20, 1);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.num_rows(), 60u);
  EXPECT_EQ(split->valid.num_rows(), 20u);
  EXPECT_EQ(split->test.num_rows(), 20u);
}

TEST(SplitTest, PartitionsAreDisjointAndCover) {
  Dataset data = MakeData(50);
  auto split = SplitDataset(data, 30, 10, 10, 2);
  ASSERT_TRUE(split.ok());
  std::multiset<double> ids;
  for (const auto* part : {&split->train, &split->valid, &split->test}) {
    for (size_t r = 0; r < part->num_rows(); ++r) {
      ids.insert(part->x.at(r, 0));
    }
  }
  EXPECT_EQ(ids.size(), 50u);
  std::set<double> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 50u);  // no duplicates across splits
}

TEST(SplitTest, ZeroValidAliasesTrain) {
  Dataset data = MakeData(40);
  auto split = SplitDataset(data, 30, 0, 10, 3);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->valid.num_rows(), split->train.num_rows());
  EXPECT_DOUBLE_EQ(split->valid.x.at(0, 0), split->train.x.at(0, 0));
}

TEST(SplitTest, LabelsTravelWithRows) {
  Dataset data = MakeData(30);
  auto split = SplitDataset(data, 20, 0, 10, 4);
  ASSERT_TRUE(split.ok());
  for (size_t r = 0; r < split->test.num_rows(); ++r) {
    const double id = split->test.x.at(r, 0);
    EXPECT_DOUBLE_EQ(split->test.labels()[r],
                     static_cast<double>(static_cast<int>(id) % 2));
  }
}

TEST(SplitTest, DeterministicInSeed) {
  Dataset data = MakeData(30);
  auto a = SplitDataset(data, 20, 0, 10, 9);
  auto b = SplitDataset(data, 20, 0, 10, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t r = 0; r < a->train.num_rows(); ++r) {
    EXPECT_DOUBLE_EQ(a->train.x.at(r, 0), b->train.x.at(r, 0));
  }
}

TEST(SplitTest, RejectsOversizedRequest) {
  Dataset data = MakeData(10);
  EXPECT_FALSE(SplitDataset(data, 8, 2, 2, 0).ok());
}

TEST(SplitTest, RejectsEmptyTrainOrTest) {
  Dataset data = MakeData(10);
  EXPECT_FALSE(SplitDataset(data, 0, 0, 5, 0).ok());
  EXPECT_FALSE(SplitDataset(data, 5, 0, 0, 0).ok());
}

TEST(SplitTest, FractionSplitUsesAllRows) {
  Dataset data = MakeData(100);
  auto split = SplitDatasetByFraction(data, 0.6, 0.2, 0.2, 5);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.num_rows() + split->valid.num_rows() +
                split->test.num_rows(),
            100u);
}

TEST(SplitTest, FractionValidation) {
  Dataset data = MakeData(10);
  EXPECT_FALSE(SplitDatasetByFraction(data, 0.9, 0.2, 0.2, 0).ok());
  EXPECT_FALSE(SplitDatasetByFraction(data, -0.1, 0.5, 0.5, 0).ok());
}

TEST(TakeDatasetRowsTest, GathersFeaturesAndLabels) {
  Dataset data = MakeData(10);
  Dataset taken = TakeDatasetRows(data, {9, 0});
  EXPECT_EQ(taken.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(taken.x.at(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(taken.labels()[0], 1.0);
  EXPECT_DOUBLE_EQ(taken.labels()[1], 0.0);
}

}  // namespace
}  // namespace safe
