#include "src/dataframe/dataframe.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safe {
namespace {

DataFrame MakeFrame() {
  DataFrame f;
  EXPECT_TRUE(f.AddColumn(Column("a", {1.0, 2.0, 3.0})).ok());
  EXPECT_TRUE(f.AddColumn(Column("b", {4.0, 5.0, 6.0})).ok());
  EXPECT_TRUE(f.AddColumn(Column("c", {7.0, 8.0, 9.0})).ok());
  return f;
}

TEST(ColumnTest, BasicAccessors) {
  Column c("x", {1.0, 2.0});
  EXPECT_EQ(c.name(), "x");
  EXPECT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
}

TEST(ColumnTest, RenamedSharesBuffer) {
  Column c("x", {1.0, 2.0});
  Column r = c.Renamed("y");
  EXPECT_EQ(r.name(), "y");
  EXPECT_EQ(r.data().get(), c.data().get());
}

TEST(ColumnTest, CountMissing) {
  Column c("x", {1.0, std::nan(""), 3.0, std::nan("")});
  EXPECT_EQ(c.CountMissing(), 2u);
}

TEST(ColumnTest, IsConstant) {
  EXPECT_TRUE(Column("x", {2.0, 2.0, 2.0}).IsConstant());
  EXPECT_TRUE(Column("x", {std::nan(""), 2.0, 2.0}).IsConstant());
  EXPECT_FALSE(Column("x", {2.0, 3.0}).IsConstant());
  EXPECT_TRUE(Column("x", std::vector<double>{}).IsConstant());
}

TEST(DataFrameTest, AddAndLookup) {
  DataFrame f = MakeFrame();
  EXPECT_EQ(f.num_columns(), 3u);
  EXPECT_EQ(f.num_rows(), 3u);
  EXPECT_EQ(*f.ColumnIndex("b"), 1u);
  EXPECT_FALSE(f.ColumnIndex("zz").ok());
  EXPECT_TRUE(f.HasColumn("c"));
  EXPECT_FALSE(f.HasColumn("d"));
}

TEST(DataFrameTest, RejectsDuplicateName) {
  DataFrame f = MakeFrame();
  Status st = f.AddColumn(Column("a", {0.0, 0.0, 0.0}));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST(DataFrameTest, RejectsLengthMismatch) {
  DataFrame f = MakeFrame();
  Status st = f.AddColumn(Column("d", {1.0}));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(DataFrameTest, SelectIsZeroCopy) {
  DataFrame f = MakeFrame();
  auto sel = f.Select({2, 0});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->num_columns(), 2u);
  EXPECT_EQ(sel->column(0).name(), "c");
  EXPECT_EQ(sel->column(0).data().get(), f.column(2).data().get());
}

TEST(DataFrameTest, SelectOutOfRangeFails) {
  DataFrame f = MakeFrame();
  EXPECT_EQ(f.Select({5}).status().code(), StatusCode::kOutOfRange);
}

TEST(DataFrameTest, TakeRowsGathers) {
  DataFrame f = MakeFrame();
  DataFrame t = f.TakeRows({2, 0, 2});
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(2, 2), 9.0);
}

TEST(DataFrameTest, SliceRows) {
  DataFrame f = MakeFrame();
  DataFrame s = f.SliceRows(1, 3);
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 5.0);
}

TEST(DataFrameTest, RowMaterializes) {
  DataFrame f = MakeFrame();
  auto row = f.Row(1);
  EXPECT_EQ(row, (std::vector<double>{2.0, 5.0, 8.0}));
}

TEST(DataFrameTest, ConcatMergesColumns) {
  DataFrame f = MakeFrame();
  DataFrame g;
  ASSERT_TRUE(g.AddColumn(Column("d", {0.1, 0.2, 0.3})).ok());
  auto merged = f.Concat(g);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_columns(), 4u);
  EXPECT_EQ(merged->column(3).name(), "d");
}

TEST(DataFrameTest, ConcatRejectsDuplicates) {
  DataFrame f = MakeFrame();
  DataFrame g;
  ASSERT_TRUE(g.AddColumn(Column("a", {0.0, 0.0, 0.0})).ok());
  EXPECT_FALSE(f.Concat(g).ok());
}

TEST(DataFrameTest, ConcatRejectsRowMismatch) {
  DataFrame f = MakeFrame();
  DataFrame g;
  ASSERT_TRUE(g.AddColumn(Column("d", {0.0})).ok());
  EXPECT_FALSE(f.Concat(g).ok());
}

TEST(DatasetTest, MakeDatasetValidates) {
  DataFrame f = MakeFrame();
  auto ok = MakeDataset(f, {0.0, 1.0, 1.0});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->num_rows(), 3u);

  EXPECT_FALSE(MakeDataset(f, {0.0, 1.0}).ok());          // size mismatch
  EXPECT_FALSE(MakeDataset(f, {0.0, 0.5, 1.0}).ok());     // non-binary
}

TEST(DataFrameTest, EmptyFrame) {
  DataFrame f;
  EXPECT_EQ(f.num_rows(), 0u);
  EXPECT_EQ(f.num_columns(), 0u);
  EXPECT_TRUE(f.ColumnNames().empty());
}

}  // namespace
}  // namespace safe
