// Concurrency suite for the fused serving path: one shared RowScorer,
// many threads, outputs byte-identical to a serial pass. The checked
// Score/ScoreBatch APIs keep per-thread scratch internally, so hammering
// them concurrently is exactly the pattern a serving process runs; the
// tsan preset re-runs this suite under ThreadSanitizer.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/gbdt/booster.h"
#include "src/serve/scorer.h"
#include "tests/property_util.h"

namespace safe {
namespace {

struct Fixture {
  Dataset data;
  FeaturePlan plan;
  gbdt::Booster booster;
  serve::RowScorer scorer;
  std::vector<std::vector<double>> rows;
};

Fixture MakeFixture(uint64_t seed) {
  Fixture f;
  f.data = testutil::MakePropertyDataset(seed);
  SafeParams params;
  params.seed = seed;
  SafeEngine engine(params);
  auto fit = engine.Fit(f.data);
  SAFE_CHECK(fit.ok()) << fit.status().ToString();
  f.plan = std::move(fit->plan);
  auto engineered = f.plan.Transform(f.data.x);
  SAFE_CHECK(engineered.ok()) << engineered.status().ToString();
  gbdt::GbdtParams gbdt_params;
  gbdt_params.seed = seed;
  gbdt_params.num_trees = 15;
  Dataset engineered_train{std::move(*engineered), f.data.y};
  auto booster = gbdt::Booster::Fit(engineered_train, nullptr, gbdt_params);
  SAFE_CHECK(booster.ok()) << booster.status().ToString();
  f.booster = std::move(*booster);
  auto scorer = serve::RowScorer::Create(f.plan, f.booster);
  SAFE_CHECK(scorer.ok()) << scorer.status().ToString();
  f.scorer = std::move(*scorer);
  for (size_t r = 0; r < f.data.num_rows(); ++r) {
    f.rows.push_back(f.data.x.Row(r));
  }
  return f;
}

bool SameBytes(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(ServeConcurrencyTest, ConcurrentScoreMatchesSerial) {
  Fixture f = MakeFixture(21);
  const size_t n = f.rows.size();

  std::vector<double> serial(n);
  for (size_t r = 0; r < n; ++r) {
    auto score = f.scorer.Score(f.rows[r]);
    ASSERT_TRUE(score.ok()) << score.status().ToString();
    serial[r] = *score;
  }

  // Each thread scores every row into its own stripe-checked copy; the
  // scorer is shared, the per-thread scratch is the scorer's own.
  const size_t num_threads = 8;
  std::vector<std::vector<double>> per_thread(num_threads,
                                              std::vector<double>(n));
  std::vector<int> failures(num_threads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t r = 0; r < n; ++r) {
        auto score = f.scorer.Score(f.rows[r]);
        if (!score.ok()) {
          failures[t] += 1;
          return;
        }
        per_thread[t][r] = *score;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t t = 0; t < num_threads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
    EXPECT_TRUE(SameBytes(serial, per_thread[t])) << "thread " << t;
  }
}

TEST(ServeConcurrencyTest, ConcurrentScoreBatchMatchesSerial) {
  Fixture f = MakeFixture(22);
  std::vector<double> serial;
  ASSERT_TRUE(f.scorer.ScoreBatch(f.rows, &serial).ok());

  const size_t num_threads = 6;
  std::vector<std::vector<double>> per_thread(num_threads);
  std::vector<int> failures(num_threads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      // Repeat to stress scratch reuse across calls on one thread.
      for (int repeat = 0; repeat < 3; ++repeat) {
        if (!f.scorer.ScoreBatch(f.rows, &per_thread[t]).ok()) {
          failures[t] += 1;
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t t = 0; t < num_threads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
    EXPECT_TRUE(SameBytes(serial, per_thread[t])) << "thread " << t;
  }
}

TEST(ServeConcurrencyTest, TwoScorersShareThreadsWithoutCrosstalk) {
  // Two live scorers exercised from the same threads: the per-thread
  // scratch cache must key on scorer identity, not clobber across them.
  Fixture f1 = MakeFixture(23);
  Fixture f2 = MakeFixture(24);

  std::vector<double> serial1(f1.rows.size());
  for (size_t r = 0; r < f1.rows.size(); ++r) {
    auto score = f1.scorer.Score(f1.rows[r]);
    ASSERT_TRUE(score.ok());
    serial1[r] = *score;
  }
  std::vector<double> serial2(f2.rows.size());
  for (size_t r = 0; r < f2.rows.size(); ++r) {
    auto score = f2.scorer.Score(f2.rows[r]);
    ASSERT_TRUE(score.ok());
    serial2[r] = *score;
  }

  const size_t num_threads = 4;
  std::vector<std::vector<double>> out1(num_threads,
                                        std::vector<double>(f1.rows.size()));
  std::vector<std::vector<double>> out2(num_threads,
                                        std::vector<double>(f2.rows.size()));
  std::vector<int> failures(num_threads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      const size_t iterations =
          std::max(f1.rows.size(), f2.rows.size());
      for (size_t r = 0; r < iterations; ++r) {
        if (r < f1.rows.size()) {
          auto score = f1.scorer.Score(f1.rows[r]);
          if (!score.ok()) {
            failures[t] += 1;
            return;
          }
          out1[t][r] = *score;
        }
        if (r < f2.rows.size()) {
          auto score = f2.scorer.Score(f2.rows[r]);
          if (!score.ok()) {
            failures[t] += 1;
            return;
          }
          out2[t][r] = *score;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t t = 0; t < num_threads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
    EXPECT_TRUE(SameBytes(serial1, out1[t])) << "thread " << t;
    EXPECT_TRUE(SameBytes(serial2, out2[t])) << "thread " << t;
  }
}

}  // namespace
}  // namespace safe
