#include "src/stats/iv.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"

namespace safe {
namespace {

TEST(IvBandTest, TableOneBands) {
  EXPECT_EQ(ClassifyIv(0.01), IvBand::kUseless);
  EXPECT_EQ(ClassifyIv(0.05), IvBand::kWeak);
  EXPECT_EQ(ClassifyIv(0.2), IvBand::kMedium);
  EXPECT_EQ(ClassifyIv(0.4), IvBand::kStrong);
  EXPECT_EQ(ClassifyIv(0.9), IvBand::kExtremelyStrong);
  EXPECT_STREQ(IvBandName(IvBand::kMedium), "Medium predictor");
}

TEST(IvTest, UninformativeFeatureHasLowIv) {
  Rng rng(1);
  std::vector<double> feature(4000);
  std::vector<double> labels(4000);
  for (size_t i = 0; i < feature.size(); ++i) {
    feature[i] = rng.NextGaussian();
    labels[i] = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
  }
  auto iv = InformationValue(feature, labels, 10);
  ASSERT_TRUE(iv.ok());
  EXPECT_LT(*iv, 0.05);
}

TEST(IvTest, InformativeFeatureHasHighIv) {
  Rng rng(2);
  std::vector<double> feature(4000);
  std::vector<double> labels(4000);
  for (size_t i = 0; i < feature.size(); ++i) {
    labels[i] = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
    feature[i] = rng.NextGaussian() + (labels[i] > 0.5 ? 1.5 : 0.0);
  }
  auto iv = InformationValue(feature, labels, 10);
  ASSERT_TRUE(iv.ok());
  EXPECT_GT(*iv, 0.5);
}

TEST(IvTest, MonotoneInSignalStrength) {
  Rng rng(3);
  double prev = 0.0;
  for (double shift : {0.0, 0.5, 1.0, 2.0}) {
    Rng local(17);
    std::vector<double> feature(3000);
    std::vector<double> labels(3000);
    for (size_t i = 0; i < feature.size(); ++i) {
      labels[i] = local.NextBernoulli(0.5) ? 1.0 : 0.0;
      feature[i] = local.NextGaussian() + (labels[i] > 0.5 ? shift : 0.0);
    }
    auto iv = InformationValue(feature, labels, 10);
    ASSERT_TRUE(iv.ok());
    EXPECT_GE(*iv + 1e-9, prev) << "shift " << shift;
    prev = *iv;
  }
  (void)rng;
}

TEST(IvTest, NonNegativeInPractice) {
  // IV is a sum of (p-q)ln(p/q) terms, each >= 0.
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> feature(500);
    std::vector<double> labels(500);
    for (size_t i = 0; i < feature.size(); ++i) {
      feature[i] = rng.NextUniform(-1, 1);
      labels[i] = rng.NextBernoulli(0.3) ? 1.0 : 0.0;
    }
    auto iv = InformationValue(feature, labels, 8);
    ASSERT_TRUE(iv.ok());
    EXPECT_GE(*iv, 0.0);
  }
}

TEST(IvTest, SingleClassLabelsRejected) {
  std::vector<double> feature{1, 2, 3, 4};
  std::vector<double> labels{1, 1, 1, 1};
  EXPECT_FALSE(InformationValue(feature, labels, 2).ok());
}

TEST(IvTest, SizeMismatchRejected) {
  auto iv = InformationValueWithEdges({1, 2, 3}, {0, 1}, BinEdges{{1.5}});
  EXPECT_FALSE(iv.ok());
}

TEST(IvTest, MissingValuesGetOwnBin) {
  // Missingness itself is predictive here: NaN rows are all positive.
  std::vector<double> feature;
  std::vector<double> labels;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const bool missing = rng.NextBernoulli(0.3);
    labels.push_back(missing ? 1.0 : (rng.NextBernoulli(0.5) ? 1.0 : 0.0));
    feature.push_back(missing ? std::nan("") : rng.NextGaussian());
  }
  auto iv = InformationValue(feature, labels, 5);
  ASSERT_TRUE(iv.ok());
  EXPECT_GT(*iv, 0.2);
}

TEST(IvTest, SmoothingKeepsIvFinite) {
  // A bin containing only positives would blow up without pseudo-counts.
  std::vector<double> feature;
  std::vector<double> labels;
  for (int i = 0; i < 100; ++i) {
    feature.push_back(static_cast<double>(i));
    labels.push_back(i < 50 ? 1.0 : 0.0);  // perfectly separable
  }
  auto iv = InformationValue(feature, labels, 4);
  ASSERT_TRUE(iv.ok());
  EXPECT_TRUE(std::isfinite(*iv));
  EXPECT_GT(*iv, 1.0);  // extremely strong
}

// Property: IV with a constant feature is ~0 (single bin, no separation).
TEST(IvTest, ConstantFeatureScoresZero) {
  std::vector<double> feature(200, 3.0);
  std::vector<double> labels(200);
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = (i % 2) ? 1.0 : 0.0;
  auto iv = InformationValue(feature, labels, 10);
  ASSERT_TRUE(iv.ok());
  EXPECT_NEAR(*iv, 0.0, 1e-12);
}

// Parameterized: IV is stable across bin counts for a strong feature.
class IvBinSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(IvBinSweepTest, StrongSignalDetectedAtAnyBinCount) {
  Rng rng(6);
  std::vector<double> feature(3000);
  std::vector<double> labels(3000);
  for (size_t i = 0; i < feature.size(); ++i) {
    labels[i] = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
    feature[i] = rng.NextGaussian() + (labels[i] > 0.5 ? 2.0 : 0.0);
  }
  auto iv = InformationValue(feature, labels, GetParam());
  ASSERT_TRUE(iv.ok());
  EXPECT_GT(*iv, 0.5) << "bins " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, IvBinSweepTest,
                         ::testing::Values(2, 4, 8, 10, 16, 32));

}  // namespace
}  // namespace safe
