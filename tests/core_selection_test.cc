#include "src/core/selection.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/random.h"
#include "src/stats/correlation.h"

namespace safe {
namespace {

/// Frame with: strong signal, weak signal, copy-of-strong (redundant),
/// pure noise. Labels driven by the strong column.
struct SelectionFixture {
  Dataset data;
  std::vector<double> ivs;

  SelectionFixture() {
    Rng rng(11);
    const size_t n = 3000;
    std::vector<double> strong(n);
    std::vector<double> weak(n);
    std::vector<double> copy(n);
    std::vector<double> noise(n);
    std::vector<double> labels(n);
    for (size_t i = 0; i < n; ++i) {
      labels[i] = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
      strong[i] = rng.NextGaussian() + (labels[i] > 0.5 ? 2.0 : 0.0);
      weak[i] = rng.NextGaussian() + (labels[i] > 0.5 ? 0.4 : 0.0);
      copy[i] = 3.0 * strong[i] + 1.0 + 0.01 * rng.NextGaussian();
      noise[i] = rng.NextGaussian();
    }
    DataFrame x;
    EXPECT_TRUE(x.AddColumn(Column("strong", strong)).ok());
    EXPECT_TRUE(x.AddColumn(Column("weak", weak)).ok());
    EXPECT_TRUE(x.AddColumn(Column("copy", copy)).ok());
    EXPECT_TRUE(x.AddColumn(Column("noise", noise)).ok());
    data = *MakeDataset(std::move(x), std::move(labels));
    ivs = ComputeIvs(data.x, data.labels(), 10);
  }
};

TEST(ComputeIvsTest, OrdersBySignalStrength) {
  SelectionFixture fx;
  EXPECT_GT(fx.ivs[0], fx.ivs[1]);  // strong > weak
  EXPECT_GT(fx.ivs[1], fx.ivs[3]);  // weak > noise
  EXPECT_NEAR(fx.ivs[0], fx.ivs[2], 0.25);  // copy ~ strong
}

TEST(ComputeIvsTest, ConstantColumnScoresZero) {
  DataFrame x;
  ASSERT_TRUE(
      x.AddColumn(Column("const", std::vector<double>(100, 1.0))).ok());
  std::vector<double> labels(100);
  for (size_t i = 0; i < 100; ++i) labels[i] = (i % 2) ? 1.0 : 0.0;
  auto ivs = ComputeIvs(x, labels, 10);
  EXPECT_DOUBLE_EQ(ivs[0], 0.0);
}

TEST(IvFilterTest, ThresholdApplied) {
  SelectionFixture fx;
  auto kept = IvFilterIndices(fx.ivs, 0.1);
  // strong, weak and copy clear alpha; noise does not.
  EXPECT_TRUE(std::find(kept.begin(), kept.end(), 0u) != kept.end());
  EXPECT_TRUE(std::find(kept.begin(), kept.end(), 2u) != kept.end());
  EXPECT_TRUE(std::find(kept.begin(), kept.end(), 3u) == kept.end());
}

TEST(IvFilterTest, HugeThresholdKeepsNothing) {
  SelectionFixture fx;
  EXPECT_TRUE(IvFilterIndices(fx.ivs, 1e9).empty());
}

TEST(RedundancyFilterTest, DropsCorrelatedKeepingHigherIv) {
  SelectionFixture fx;
  std::vector<size_t> candidates{0, 1, 2, 3};
  auto kept =
      RedundancyFilterIndices(fx.data.x, fx.ivs, candidates, 0.8);
  // copy correlates ~1.0 with strong: exactly one of {0, 2} survives,
  // and it is the one with the larger IV.
  const bool has_strong =
      std::find(kept.begin(), kept.end(), 0u) != kept.end();
  const bool has_copy =
      std::find(kept.begin(), kept.end(), 2u) != kept.end();
  EXPECT_NE(has_strong, has_copy);
  const size_t survivor = has_strong ? 0u : 2u;
  const size_t dropped = has_strong ? 2u : 0u;
  EXPECT_GE(fx.ivs[survivor], fx.ivs[dropped]);
  // Uncorrelated columns survive.
  EXPECT_TRUE(std::find(kept.begin(), kept.end(), 1u) != kept.end());
  EXPECT_TRUE(std::find(kept.begin(), kept.end(), 3u) != kept.end());
}

TEST(RedundancyFilterTest, LowThresholdPrunesAggressively) {
  SelectionFixture fx;
  std::vector<size_t> candidates{0, 1, 2, 3};
  auto strict =
      RedundancyFilterIndices(fx.data.x, fx.ivs, candidates, 0.01);
  auto loose =
      RedundancyFilterIndices(fx.data.x, fx.ivs, candidates, 0.99);
  EXPECT_LE(strict.size(), loose.size());
  EXPECT_GE(strict.size(), 1u);
}

TEST(RedundancyFilterTest, EmptyCandidates) {
  SelectionFixture fx;
  EXPECT_TRUE(
      RedundancyFilterIndices(fx.data.x, fx.ivs, {}, 0.8).empty());
}

TEST(ImportanceRankTest, StrongFeatureRanksFirst) {
  SelectionFixture fx;
  gbdt::GbdtParams params;
  params.num_trees = 20;
  params.max_depth = 3;
  auto ranked = ImportanceRankIndices(fx.data, {0, 1, 3}, fx.ivs, params, 0);
  ASSERT_TRUE(ranked.ok());
  ASSERT_FALSE(ranked->empty());
  EXPECT_EQ((*ranked)[0], 0u);
}

TEST(ImportanceRankTest, MaxOutputTruncates) {
  SelectionFixture fx;
  gbdt::GbdtParams params;
  params.num_trees = 10;
  auto ranked =
      ImportanceRankIndices(fx.data, {0, 1, 2, 3}, fx.ivs, params, 2);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), 2u);
}

TEST(ImportanceRankTest, UnsplitCandidatesStillReturned) {
  SelectionFixture fx;
  gbdt::GbdtParams params;
  params.num_trees = 1;
  params.max_depth = 1;  // a stump splits on at most one feature
  auto ranked =
      ImportanceRankIndices(fx.data, {0, 1, 2, 3}, fx.ivs, params, 0);
  ASSERT_TRUE(ranked.ok());
  EXPECT_EQ(ranked->size(), 4u);  // every candidate comes back ordered
}

TEST(ImportanceRankTest, EmptyCandidatesOk) {
  SelectionFixture fx;
  gbdt::GbdtParams params;
  auto ranked = ImportanceRankIndices(fx.data, {}, fx.ivs, params, 0);
  ASSERT_TRUE(ranked.ok());
  EXPECT_TRUE(ranked->empty());
}

}  // namespace
}  // namespace safe
