#include "src/core/feature_plan.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safe {
namespace {

FeaturePlan MakeSimplePlan() {
  // Inputs a, b; generated (a+b) and log((a+b)); select b and the log.
  GeneratedFeature sum;
  sum.name = "(a+b)";
  sum.op = "add";
  sum.parents = {"a", "b"};
  GeneratedFeature log_sum;
  log_sum.name = "log((a+b))";
  log_sum.op = "log";
  log_sum.parents = {"(a+b)"};
  auto plan = FeaturePlan::Create({"a", "b"}, {sum, log_sum},
                                  {"b", "log((a+b))"});
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

DataFrame MakeInput() {
  DataFrame x;
  EXPECT_TRUE(x.AddColumn(Column("a", {1.0, 2.0, -5.0})).ok());
  EXPECT_TRUE(x.AddColumn(Column("b", {3.0, 4.0, 1.0})).ok());
  return x;
}

TEST(FeaturePlanTest, TransformComputesChain) {
  FeaturePlan plan = MakeSimplePlan();
  auto out = plan.Transform(MakeInput());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->num_columns(), 2u);
  EXPECT_EQ(out->column(0).name(), "b");
  EXPECT_EQ(out->column(1).name(), "log((a+b))");
  EXPECT_DOUBLE_EQ(out->at(0, 1), std::log(4.0));
  EXPECT_DOUBLE_EQ(out->at(1, 1), std::log(6.0));
  EXPECT_TRUE(std::isnan(out->at(2, 1)));  // log(-4)
}

TEST(FeaturePlanTest, TransformRowMatchesBatch) {
  FeaturePlan plan = MakeSimplePlan();
  DataFrame x = MakeInput();
  auto batch = plan.Transform(x);
  ASSERT_TRUE(batch.ok());
  for (size_t r = 0; r < x.num_rows(); ++r) {
    auto row = plan.TransformRow(x.Row(r));
    ASSERT_TRUE(row.ok());
    ASSERT_EQ(row->size(), batch->num_columns());
    for (size_t c = 0; c < row->size(); ++c) {
      const double expected = batch->at(r, c);
      if (std::isnan(expected)) {
        EXPECT_TRUE(std::isnan((*row)[c]));
      } else {
        EXPECT_DOUBLE_EQ((*row)[c], expected);
      }
    }
  }
}

TEST(FeaturePlanTest, SerializeRoundTrips) {
  FeaturePlan plan = MakeSimplePlan();
  const std::string text = plan.Serialize();
  auto back = FeaturePlan::Deserialize(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->input_columns(), plan.input_columns());
  EXPECT_EQ(back->selected(), plan.selected());
  ASSERT_EQ(back->generated().size(), plan.generated().size());
  // Behavioural equality.
  DataFrame x = MakeInput();
  auto a = plan.Transform(x);
  auto b = back->Transform(x);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t r = 0; r < x.num_rows(); ++r) {
    for (size_t c = 0; c < a->num_columns(); ++c) {
      const double va = a->at(r, c);
      const double vb = b->at(r, c);
      if (std::isnan(va)) {
        EXPECT_TRUE(std::isnan(vb));
      } else {
        EXPECT_DOUBLE_EQ(va, vb);
      }
    }
  }
}

TEST(FeaturePlanTest, SerializeKeepsFittedParams) {
  GeneratedFeature z;
  z.name = "zscore(a)";
  z.op = "zscore";
  z.parents = {"a"};
  z.params = {5.0, 2.0};
  auto plan = FeaturePlan::Create({"a"}, {z}, {"zscore(a)"});
  ASSERT_TRUE(plan.ok());
  auto back = FeaturePlan::Deserialize(plan->Serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->generated()[0].params.size(), 2u);
  EXPECT_DOUBLE_EQ(back->generated()[0].params[0], 5.0);
  auto row = back->TransformRow({9.0});
  ASSERT_TRUE(row.ok());
  EXPECT_DOUBLE_EQ((*row)[0], 2.0);
}

TEST(FeaturePlanTest, CreateValidatesReferences) {
  GeneratedFeature feature;
  feature.name = "g";
  feature.op = "add";
  feature.parents = {"a", "zzz"};
  EXPECT_FALSE(FeaturePlan::Create({"a"}, {feature}, {"g"}).ok());

  feature.parents = {"a", "a"};
  EXPECT_FALSE(FeaturePlan::Create({"a"}, {feature}, {"nope"}).ok());

  // Duplicate input names rejected.
  EXPECT_FALSE(FeaturePlan::Create({"a", "a"}, {}, {"a"}).ok());

  // Generated feature shadowing an input rejected.
  GeneratedFeature shadow;
  shadow.name = "a";
  shadow.op = "log";
  shadow.parents = {"a"};
  EXPECT_FALSE(FeaturePlan::Create({"a"}, {shadow}, {"a"}).ok());
}

TEST(FeaturePlanTest, ForwardReferenceRejected) {
  // g1 depends on g2 which is declared later: invalid order.
  GeneratedFeature g1;
  g1.name = "g1";
  g1.op = "log";
  g1.parents = {"g2"};
  GeneratedFeature g2;
  g2.name = "g2";
  g2.op = "log";
  g2.parents = {"a"};
  EXPECT_FALSE(FeaturePlan::Create({"a"}, {g1, g2}, {"g1"}).ok());
}

TEST(FeaturePlanTest, TransformValidatesSchema) {
  FeaturePlan plan = MakeSimplePlan();
  DataFrame wrong_width;
  ASSERT_TRUE(wrong_width.AddColumn(Column("a", {1.0})).ok());
  EXPECT_FALSE(plan.Transform(wrong_width).ok());

  DataFrame wrong_names;
  ASSERT_TRUE(wrong_names.AddColumn(Column("x", {1.0})).ok());
  ASSERT_TRUE(wrong_names.AddColumn(Column("y", {2.0})).ok());
  EXPECT_FALSE(plan.Transform(wrong_names).ok());

  EXPECT_FALSE(plan.TransformRow({1.0}).ok());
}

TEST(FeaturePlanTest, UnknownOperatorFailsAtTransform) {
  GeneratedFeature feature;
  feature.name = "g";
  feature.op = "not_an_op";
  feature.parents = {"a"};
  auto plan = FeaturePlan::Create({"a"}, {feature}, {"g"});
  ASSERT_TRUE(plan.ok());  // structure is fine; operator resolved lazily
  DataFrame x;
  ASSERT_TRUE(x.AddColumn(Column("a", {1.0})).ok());
  EXPECT_FALSE(plan->Transform(x).ok());
}

TEST(FeaturePlanTest, EmptyPlanIsIdentityOnSelection) {
  auto plan = FeaturePlan::Create({"a", "b"}, {}, {"a"});
  ASSERT_TRUE(plan.ok());
  auto out = plan->Transform(MakeInput());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_columns(), 1u);
  EXPECT_DOUBLE_EQ(out->at(1, 0), 2.0);
  EXPECT_EQ(plan->NumSelectedGenerated(), 0u);
}

TEST(FeaturePlanTest, NumSelectedGeneratedCounts) {
  FeaturePlan plan = MakeSimplePlan();
  EXPECT_EQ(plan.NumSelectedGenerated(), 1u);  // log((a+b)) but not b
}

TEST(FeaturePlanTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(FeaturePlan::Deserialize("").ok());
  EXPECT_FALSE(FeaturePlan::Deserialize("feature_plan v9\n").ok());
  EXPECT_FALSE(
      FeaturePlan::Deserialize("feature_plan v1\ninputs 2\nonly_one\n").ok());
}

}  // namespace
}  // namespace safe
