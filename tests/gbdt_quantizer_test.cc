#include "src/gbdt/quantizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"

namespace safe {
namespace gbdt {
namespace {

DataFrame MakeFrame(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  DataFrame f;
  for (size_t c = 0; c < cols; ++c) {
    std::vector<double> col(rows);
    for (double& v : col) v = rng.NextGaussian();
    EXPECT_TRUE(f.AddColumn(Column("f" + std::to_string(c), col)).ok());
  }
  return f;
}

TEST(QuantizerTest, FitAndTransformShapes) {
  DataFrame f = MakeFrame(500, 3, 1);
  auto q = FeatureQuantizer::Fit(f, 16);
  ASSERT_TRUE(q.ok());
  auto matrix = q->Transform(f);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->num_features(), 3u);
  EXPECT_EQ(matrix->num_rows, 500u);
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_LE(matrix->edges[c].edges.size(), 15u);
  }
}

TEST(QuantizerTest, BinsAreConsistentWithEdges) {
  DataFrame f = MakeFrame(300, 2, 2);
  auto q = FeatureQuantizer::Fit(f, 8);
  ASSERT_TRUE(q.ok());
  auto matrix = q->Transform(f);
  ASSERT_TRUE(matrix.ok());
  for (size_t c = 0; c < 2; ++c) {
    for (size_t r = 0; r < 300; ++r) {
      EXPECT_EQ(matrix->bins[c][r],
                q->edges()[c].BinIndex(f.column(c)[r]));
    }
  }
}

TEST(QuantizerTest, MissingGoesToMissingBin) {
  DataFrame f;
  ASSERT_TRUE(
      f.AddColumn(Column("x", {1.0, std::nan(""), 3.0, 4.0, 5.0})).ok());
  auto q = FeatureQuantizer::Fit(f, 4);
  ASSERT_TRUE(q.ok());
  auto matrix = q->Transform(f);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->bins[0][1], q->edges()[0].missing_bin());
}

TEST(QuantizerTest, AllMissingColumnGetsSingleBin) {
  DataFrame f;
  std::vector<double> col(10, std::nan(""));
  std::vector<double> other{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  ASSERT_TRUE(f.AddColumn(Column("dead", col)).ok());
  ASSERT_TRUE(f.AddColumn(Column("live", other)).ok());
  auto q = FeatureQuantizer::Fit(f, 4);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->edges()[0].edges.empty());
  EXPECT_FALSE(q->edges()[1].edges.empty());
}

TEST(QuantizerTest, TransformRejectsColumnMismatch) {
  DataFrame f = MakeFrame(100, 3, 3);
  auto q = FeatureQuantizer::Fit(f, 8);
  ASSERT_TRUE(q.ok());
  DataFrame g = MakeFrame(100, 2, 4);
  EXPECT_FALSE(q->Transform(g).ok());
}

TEST(QuantizerTest, ValidatesArguments) {
  DataFrame empty;
  EXPECT_FALSE(FeatureQuantizer::Fit(empty, 8).ok());
  DataFrame f = MakeFrame(10, 1, 5);
  EXPECT_FALSE(FeatureQuantizer::Fit(f, 1).ok());
  EXPECT_FALSE(FeatureQuantizer::Fit(f, 100000).ok());
}

TEST(QuantizerTest, TransformAppliesTrainEdgesToNewData) {
  DataFrame train = MakeFrame(1000, 1, 6);
  auto q = FeatureQuantizer::Fit(train, 8);
  ASSERT_TRUE(q.ok());
  DataFrame test;
  ASSERT_TRUE(test.AddColumn(Column("f0", {-100.0, 0.0, 100.0})).ok());
  auto matrix = q->Transform(test);
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->bins[0][0], 0u);  // far-left value in first bin
  EXPECT_EQ(matrix->bins[0][2], q->edges()[0].edges.size());  // far right
}

}  // namespace
}  // namespace gbdt
}  // namespace safe
