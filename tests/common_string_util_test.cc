#include "src/common/string_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safe {
namespace {

TEST(SplitStringTest, Basic) {
  auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, KeepsEmptyFields) {
  auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitStringTest, EmptyInputYieldsOneEmptyField) {
  auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
}

TEST(ParseDoubleTest, ParsesNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2"), -2.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 1e3 "), 1000.0);
}

TEST(ParseDoubleTest, MissingTokensBecomeNaN) {
  for (const char* tok : {"", "NA", "nan", "NaN", "?", "null"}) {
    auto r = ParseDouble(tok);
    ASSERT_TRUE(r.ok()) << tok;
    EXPECT_TRUE(std::isnan(*r)) << tok;
  }
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2x").ok());
}

TEST(ParseIntTest, ParsesAndRejects) {
  EXPECT_EQ(*ParseInt("42"), 42);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_FALSE(ParseInt("4.2").ok());
  EXPECT_FALSE(ParseInt("").ok());
}

TEST(FormatDoubleTest, FixedPrecision) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
  EXPECT_EQ(FormatDouble(std::nan(""), 3), "nan");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace safe
