#include "src/dataframe/spill.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <thread>
#include <vector>

#include "src/common/random.h"

namespace safe {
namespace {

std::vector<double> MakePayload(size_t n, double base) {
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = base + static_cast<double>(i);
  return out;
}

size_t PayloadBytes(const std::vector<double>& payload) {
  return payload.size() * sizeof(double);
}

TEST(SpillPoolTest, UnboundedBudgetNeverEvicts) {
  auto pool = SpillPool::Create({});
  ASSERT_TRUE(pool.ok());
  std::vector<uint64_t> ids;
  for (int k = 0; k < 8; ++k) {
    auto payload = MakePayload(1024, k * 1000.0);
    ids.push_back((*pool)->Seal(payload.data(), PayloadBytes(payload)));
  }
  const SpillPoolStats stats = (*pool)->stats();
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.faults, 0u);
  EXPECT_EQ(stats.num_groups, 8u);
  EXPECT_EQ(stats.resident_bytes, stats.total_bytes);
  EXPECT_EQ(stats.file_bytes, 0u);
  for (uint64_t id : ids) {
    SpillPool::Pin pin = (*pool)->PinGroup(id);
    EXPECT_TRUE(pin.valid());
  }
  EXPECT_EQ((*pool)->stats().faults, 0u);
}

TEST(SpillPoolTest, EvictionIsInsertionOrderFifo) {
  // Budget of exactly two 1024-double groups.
  SpillPool::Options options;
  options.resident_budget_bytes = 2 * 1024 * sizeof(double);
  auto pool = SpillPool::Create(options);
  ASSERT_TRUE(pool.ok());

  auto pa = MakePayload(1024, 0.0);
  auto pb = MakePayload(1024, 1e6);
  auto pc = MakePayload(1024, 2e6);
  const uint64_t a = (*pool)->Seal(pa.data(), PayloadBytes(pa));
  const uint64_t b = (*pool)->Seal(pb.data(), PayloadBytes(pb));
  const uint64_t c = (*pool)->Seal(pc.data(), PayloadBytes(pc));

  // Sealing C pushed the pool over budget; the oldest group (A) went out.
  EXPECT_EQ((*pool)->ResidentGroupIdsForTest(),
            (std::vector<uint64_t>{b, c}));
  EXPECT_EQ((*pool)->stats().evictions, 1u);

  // Faulting A back re-inserts it at the FIFO tail and evicts B (now the
  // oldest) — deterministic, no wall-clock involved.
  {
    SpillPool::Pin pin = (*pool)->PinGroup(a);
    EXPECT_EQ((*pool)->ResidentGroupIdsForTest(),
              (std::vector<uint64_t>{c, a}));
  }
  EXPECT_EQ((*pool)->stats().faults, 1u);
  EXPECT_EQ((*pool)->stats().evictions, 2u);
}

TEST(SpillPoolTest, PinnedGroupsAreSkippedInPlace) {
  SpillPool::Options options;
  options.resident_budget_bytes = 2 * 1024 * sizeof(double);
  auto pool = SpillPool::Create(options);
  ASSERT_TRUE(pool.ok());

  auto pa = MakePayload(1024, 0.0);
  auto pb = MakePayload(1024, 1e6);
  const uint64_t a = (*pool)->Seal(pa.data(), PayloadBytes(pa));
  const uint64_t b = (*pool)->Seal(pb.data(), PayloadBytes(pb));

  // Pin A (the would-be victim), then push over budget: B must go
  // instead, and A keeps its FIFO position for later rounds.
  SpillPool::Pin pin_a = (*pool)->PinGroup(a);
  auto pc = MakePayload(1024, 2e6);
  const uint64_t c = (*pool)->Seal(pc.data(), PayloadBytes(pc));
  EXPECT_EQ((*pool)->ResidentGroupIdsForTest(),
            (std::vector<uint64_t>{a, c}));

  // Releasing the pin makes A evictable again at its original position.
  pin_a.Release();
  auto pd = MakePayload(1024, 3e6);
  (*pool)->Seal(pd.data(), PayloadBytes(pd));
  const std::vector<uint64_t> resident = (*pool)->ResidentGroupIdsForTest();
  ASSERT_EQ(resident.size(), 2u);
  EXPECT_EQ(resident[0], c);
  (void)b;
}

TEST(SpillPoolTest, FaultBackIsBitLossless) {
  SpillPool::Options options;
  options.resident_budget_bytes = 1;  // smaller than any group: always spill
  auto pool = SpillPool::Create(options);
  ASSERT_TRUE(pool.ok());

  // Adversarial payload: NaN with payload bits, -0.0, denormals, infs.
  std::vector<double> payload(4096, 0.0);
  Rng rng(123);
  for (auto& v : payload) v = rng.NextGaussian();
  payload[0] = std::numeric_limits<double>::quiet_NaN();
  uint64_t nan_bits = 0x7FF800000000BEEFULL;  // NaN with a payload
  std::memcpy(&payload[1], &nan_bits, sizeof(nan_bits));
  payload[2] = -0.0;
  payload[3] = std::numeric_limits<double>::denorm_min();
  payload[4] = -std::numeric_limits<double>::infinity();

  const uint64_t id = (*pool)->Seal(payload.data(), PayloadBytes(payload));
  // The tiny budget evicted it immediately.
  EXPECT_EQ((*pool)->stats().evictions, 1u);

  SpillPool::Pin pin = (*pool)->PinGroup(id);
  ASSERT_TRUE(pin.valid());
  ASSERT_EQ(pin.bytes(), PayloadBytes(payload));
  EXPECT_EQ(std::memcmp(pin.data(), payload.data(), pin.bytes()), 0);
  EXPECT_EQ((*pool)->stats().faults, 1u);
  EXPECT_EQ((*pool)->stats().spill_read_bytes, PayloadBytes(payload));
}

TEST(SpillPoolTest, SpillsOnlyOnFirstEviction) {
  SpillPool::Options options;
  options.resident_budget_bytes = 1;
  auto pool = SpillPool::Create(options);
  ASSERT_TRUE(pool.ok());

  auto payload = MakePayload(4096, 5.0);
  const uint64_t id = (*pool)->Seal(payload.data(), PayloadBytes(payload));
  for (int round = 0; round < 3; ++round) {
    SpillPool::Pin pin = (*pool)->PinGroup(id);
    EXPECT_EQ(std::memcmp(pin.data(), payload.data(), pin.bytes()), 0);
  }
  const SpillPoolStats stats = (*pool)->stats();
  // Written once; every later eviction only drops the heap copy.
  EXPECT_EQ(stats.spill_write_bytes, PayloadBytes(payload));
  EXPECT_EQ(stats.faults, 3u);
  EXPECT_EQ(stats.evictions, 4u);
}

TEST(SpillPoolTest, BudgetAccounting) {
  const size_t group_bytes = 1024 * sizeof(double);
  SpillPool::Options options;
  options.resident_budget_bytes = 3 * group_bytes;
  auto pool = SpillPool::Create(options);
  ASSERT_TRUE(pool.ok());

  for (int k = 0; k < 10; ++k) {
    auto payload = MakePayload(1024, k * 1.0);
    (*pool)->Seal(payload.data(), PayloadBytes(payload));
  }
  const SpillPoolStats stats = (*pool)->stats();
  EXPECT_EQ(stats.num_groups, 10u);
  EXPECT_EQ(stats.total_bytes, 10 * group_bytes);
  EXPECT_LE(stats.resident_bytes, options.resident_budget_bytes);
  EXPECT_EQ(stats.resident_bytes, 3 * group_bytes);
  EXPECT_EQ(stats.evictions, 7u);
  EXPECT_GE(stats.file_bytes, 7 * group_bytes);
}

TEST(SpillPoolTest, LeavesNoFilesBehind) {
  const std::string dir = ::testing::TempDir() + "spill_cleanup_test";
  std::filesystem::create_directories(dir);
  {
    SpillPool::Options options;
    options.dir = dir;
    options.resident_budget_bytes = 1;
    auto pool = SpillPool::Create(options);
    ASSERT_TRUE(pool.ok());
    EXPECT_EQ((*pool)->spill_dir(), dir);
    auto payload = MakePayload(4096, 1.0);
    (*pool)->Seal(payload.data(), PayloadBytes(payload));
    // The backing file is unlinked at creation: the directory is already
    // empty even while the pool is alive and spilling.
    EXPECT_TRUE(std::filesystem::is_empty(dir));
  }
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

TEST(SpillPoolTest, CreateFailsOnMissingDirectory) {
  SpillPool::Options options;
  options.dir = "/nonexistent-safe-spill-dir/xyz";
  auto pool = SpillPool::Create(options);
  EXPECT_FALSE(pool.ok());
}

TEST(SpillPoolTest, BudgetSmallerThanOneGroupStillWorks) {
  SpillPool::Options options;
  options.resident_budget_bytes = 8;  // one double
  auto pool = SpillPool::Create(options);
  ASSERT_TRUE(pool.ok());
  auto pa = MakePayload(4096, 0.0);
  auto pb = MakePayload(4096, 1e6);
  const uint64_t a = (*pool)->Seal(pa.data(), PayloadBytes(pa));
  const uint64_t b = (*pool)->Seal(pb.data(), PayloadBytes(pb));
  for (int round = 0; round < 2; ++round) {
    SpillPool::Pin pin_a = (*pool)->PinGroup(a);
    SpillPool::Pin pin_b = (*pool)->PinGroup(b);
    EXPECT_EQ(std::memcmp(pin_a.data(), pa.data(), pin_a.bytes()), 0);
    EXPECT_EQ(std::memcmp(pin_b.data(), pb.data(), pin_b.bytes()), 0);
  }
}

// Concurrent readers over a spilling pool: every pin must observe its
// group's exact payload regardless of interleaving (run under tsan via
// the "tsan" label).
TEST(SpillPoolConcurrencyTest, ConcurrentReadersSeeConsistentPayloads) {
  const size_t kGroups = 16;
  const size_t kRowsPerGroup = 1024;
  SpillPool::Options options;
  options.resident_budget_bytes = 4 * kRowsPerGroup * sizeof(double);
  auto created = SpillPool::Create(options);
  ASSERT_TRUE(created.ok());
  std::shared_ptr<SpillPool> pool = *created;

  std::vector<std::vector<double>> payloads;
  std::vector<uint64_t> ids;
  for (size_t g = 0; g < kGroups; ++g) {
    payloads.push_back(MakePayload(kRowsPerGroup, g * 1e5));
    ids.push_back(
        pool->Seal(payloads.back().data(), PayloadBytes(payloads.back())));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int iter = 0; iter < 200; ++iter) {
        const size_t g = rng.NextUint64Below(kGroups);
        SpillPool::Pin pin = pool->PinGroup(ids[g]);
        if (std::memcmp(pin.data(), payloads[g].data(), pin.bytes()) != 0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  const SpillPoolStats stats = pool->stats();
  EXPECT_GT(stats.faults, 0u);
  EXPECT_LE(stats.resident_bytes,
            options.resident_budget_bytes + kRowsPerGroup * sizeof(double));
}

}  // namespace
}  // namespace safe
