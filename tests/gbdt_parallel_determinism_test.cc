// Locks in the parallel-training determinism guarantee: histogram GBDT
// models trained with n_threads ∈ {1, 2, 8} must serialize to
// byte-identical strings, because work partitioning is fixed and every
// floating-point reduction happens in a fixed order (DESIGN.md,
// "Parallel training & determinism"). The tsan CMake preset runs this
// suite under ThreadSanitizer to prove the fan-out is also race-clean.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/data/synthetic.h"
#include "src/gbdt/booster.h"

namespace safe {
namespace gbdt {
namespace {

Dataset MakeData(uint64_t seed, double missing_rate) {
  data::SyntheticSpec spec;
  spec.num_rows = 600;
  spec.num_features = 10;
  spec.num_informative = 4;
  spec.num_interactions = 3;
  spec.missing_rate = missing_rate;
  spec.seed = seed;
  auto data = data::MakeSyntheticDataset(spec);
  EXPECT_TRUE(data.ok());
  return *data;
}

std::string FitAndSerialize(const Dataset& train, GbdtParams params,
                            size_t n_threads) {
  params.n_threads = n_threads;
  auto model = Booster::Fit(train, nullptr, params);
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  return model->Serialize();
}

TEST(ParallelDeterminismTest, SerializedModelsAreByteIdentical) {
  const Dataset train = MakeData(17, 0.0);
  GbdtParams params;
  params.num_trees = 20;
  params.max_depth = 5;
  params.max_bins = 64;
  const std::string serial = FitAndSerialize(train, params, 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, FitAndSerialize(train, params, 2));
  EXPECT_EQ(serial, FitAndSerialize(train, params, 8));
}

TEST(ParallelDeterminismTest, HoldsWithMissingValuesAndSampling) {
  // Missing cells exercise the missing-bin routing, and row/column
  // subsampling exercises the RNG paths (which run on the caller thread
  // and must be untouched by the fan-out).
  const Dataset train = MakeData(23, 0.15);
  GbdtParams params;
  params.num_trees = 15;
  params.max_depth = 4;
  params.subsample = 0.8;
  params.colsample_bytree = 0.7;
  const std::string serial = FitAndSerialize(train, params, 1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, FitAndSerialize(train, params, 2));
  EXPECT_EQ(serial, FitAndSerialize(train, params, 8));
}

TEST(ParallelDeterminismTest, HoldsWithEarlyStoppingAndValidation) {
  const Dataset train = MakeData(31, 0.05);
  const Dataset valid = MakeData(32, 0.05);
  GbdtParams params;
  params.num_trees = 40;
  params.max_depth = 4;
  params.early_stopping_rounds = 5;
  for (size_t n_threads : {2u, 8u}) {
    GbdtParams p1 = params;
    p1.n_threads = 1;
    GbdtParams pn = params;
    pn.n_threads = n_threads;
    auto m1 = Booster::Fit(train, &valid, p1);
    auto mn = Booster::Fit(train, &valid, pn);
    ASSERT_TRUE(m1.ok());
    ASSERT_TRUE(mn.ok());
    EXPECT_EQ(m1->best_iteration(), mn->best_iteration());
    EXPECT_EQ(m1->Serialize(), mn->Serialize());
  }
}

TEST(ParallelDeterminismTest, PredictionsMatchExactlyAcrossThreadCounts) {
  const Dataset train = MakeData(47, 0.1);
  const Dataset test = MakeData(48, 0.1);
  GbdtParams params;
  params.num_trees = 12;
  params.max_depth = 4;
  std::vector<std::vector<double>> all_probas;
  for (size_t n_threads : {1u, 2u, 8u}) {
    GbdtParams p = params;
    p.n_threads = n_threads;
    auto model = Booster::Fit(train, nullptr, p);
    ASSERT_TRUE(model.ok());
    auto proba = model->PredictProba(test.x);
    ASSERT_TRUE(proba.ok());
    all_probas.push_back(*proba);
  }
  for (size_t i = 1; i < all_probas.size(); ++i) {
    ASSERT_EQ(all_probas[0].size(), all_probas[i].size());
    for (size_t r = 0; r < all_probas[0].size(); ++r) {
      // Exact equality, not tolerance: determinism is the contract.
      EXPECT_EQ(all_probas[0][r], all_probas[i][r]) << "row " << r;
    }
  }
}

TEST(ParallelDeterminismTest, GlobalPoolDefaultMatchesExplicitCounts) {
  // n_threads == 0 (the default: the shared process-wide pool) must
  // produce the same bytes as any explicit setting, whatever the
  // machine's core count.
  const Dataset train = MakeData(53, 0.0);
  GbdtParams params;
  params.num_trees = 10;
  params.max_depth = 4;
  EXPECT_EQ(FitAndSerialize(train, params, 0),
            FitAndSerialize(train, params, 1));
}

}  // namespace
}  // namespace gbdt
}  // namespace safe
