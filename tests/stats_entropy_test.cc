#include "src/stats/entropy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safe {
namespace {

TEST(EntropyTest, UniformIsLogK) {
  EXPECT_NEAR(EntropyFromCounts({10, 10}), std::log(2.0), 1e-12);
  EXPECT_NEAR(EntropyFromCounts({5, 5, 5, 5}), std::log(4.0), 1e-12);
}

TEST(EntropyTest, DegenerateIsZero) {
  EXPECT_DOUBLE_EQ(EntropyFromCounts({42}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyFromCounts({42, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyFromCounts({}), 0.0);
}

TEST(BinaryEntropyTest, SymmetricAndBounded) {
  for (size_t pos = 0; pos <= 20; ++pos) {
    const double h = BinaryEntropy(pos, 20);
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, std::log(2.0) + 1e-12);
    EXPECT_NEAR(h, BinaryEntropy(20 - pos, 20), 1e-12);
  }
  EXPECT_NEAR(BinaryEntropy(10, 20), std::log(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(BinaryEntropy(0, 20), 0.0);
  EXPECT_DOUBLE_EQ(BinaryEntropy(5, 0), 0.0);
}

TEST(InformationGainTest, PerfectSplitRecoversFullEntropy) {
  // Two cells, each pure, balanced classes overall.
  std::vector<PartitionCell> cells{{50, 50}, {0, 50}};
  EXPECT_NEAR(InformationGain(cells), std::log(2.0), 1e-12);
}

TEST(InformationGainTest, UninformativeSplitIsZero) {
  std::vector<PartitionCell> cells{{25, 50}, {25, 50}};
  EXPECT_NEAR(InformationGain(cells), 0.0, 1e-12);
}

TEST(InformationGainTest, EmptyCellsIgnored) {
  std::vector<PartitionCell> cells{{50, 50}, {0, 0}, {0, 50}};
  EXPECT_NEAR(InformationGain(cells), std::log(2.0), 1e-12);
}

TEST(InformationGainTest, NonNegative) {
  // Any partition has IG >= 0.
  std::vector<PartitionCell> cells{{3, 10}, {9, 12}, {1, 8}};
  EXPECT_GE(InformationGain(cells), 0.0);
}

TEST(SplitInformationTest, UniformPartition) {
  std::vector<PartitionCell> cells{{1, 25}, {2, 25}, {3, 25}, {4, 25}};
  EXPECT_NEAR(SplitInformation(cells), std::log(4.0), 1e-12);
}

TEST(SplitInformationTest, SingleCellIsZero) {
  std::vector<PartitionCell> cells{{10, 100}};
  EXPECT_DOUBLE_EQ(SplitInformation(cells), 0.0);
}

TEST(GainRatioTest, NormalizesByIntrinsicEntropy) {
  std::vector<PartitionCell> cells{{50, 50}, {0, 50}};
  const double expected = InformationGain(cells) / SplitInformation(cells);
  EXPECT_NEAR(InformationGainRatio(cells), expected, 1e-12);
  EXPECT_GT(InformationGainRatio(cells), 0.0);
}

TEST(GainRatioTest, TrivialPartitionScoresZero) {
  std::vector<PartitionCell> single{{10, 100}};
  EXPECT_DOUBLE_EQ(InformationGainRatio(single), 0.0);
  std::vector<PartitionCell> empty;
  EXPECT_DOUBLE_EQ(InformationGainRatio(empty), 0.0);
}

TEST(GainRatioTest, PenalizesManyCellsVsPlainGain) {
  // Same information gain but split across many tiny cells scores a
  // lower *ratio* than the two-cell version.
  std::vector<PartitionCell> two{{50, 50}, {0, 50}};
  std::vector<PartitionCell> many;
  for (int i = 0; i < 10; ++i) many.push_back({i < 5 ? 10u : 0u, 10});
  EXPECT_NEAR(InformationGain(two), InformationGain(many), 1e-12);
  EXPECT_GT(InformationGainRatio(two), InformationGainRatio(many));
}

// Property sweep: gain ratio stays within [0, 1] for random-ish cells.
class GainRatioPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GainRatioPropertyTest, RatioBounded) {
  const int seed = GetParam();
  std::vector<PartitionCell> cells;
  unsigned state = static_cast<unsigned>(seed) * 2654435761u + 1u;
  auto next = [&state]() {
    state = state * 1664525u + 1013904223u;
    return (state >> 16) % 40;
  };
  for (int i = 0; i < 2 + seed % 6; ++i) {
    const size_t total = next() + 1;
    const size_t pos = next() % (total + 1);
    cells.push_back({pos, total});
  }
  const double ratio = InformationGainRatio(cells);
  EXPECT_GE(ratio, 0.0);
  EXPECT_LE(ratio, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GainRatioPropertyTest,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace safe
