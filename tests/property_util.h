#pragma once

// Shared generators for the property/differential test layer: seeded
// randomized datasets whose shape, interaction structure, missingness
// and degenerate columns are all drawn deterministically from the seed,
// so every failure reproduces from the seed alone.

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/data/synthetic.h"
#include "src/dataframe/dataframe.h"

namespace safe {
namespace testutil {

/// Randomized-but-seed-deterministic dataset: rows, feature count,
/// interaction structure and missing rate all vary with the seed. Every
/// third seed produces a NaN-bearing dataset so missing-value paths are
/// exercised across the sweep, not in one hand-picked case.
inline Dataset MakePropertyDataset(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  data::SyntheticSpec spec;
  spec.num_rows = 300 + rng.NextUint64Below(700);
  spec.num_features = 5 + rng.NextUint64Below(6);
  spec.num_informative = 2 + rng.NextUint64Below(2);
  spec.num_interactions = 1 + rng.NextUint64Below(2);
  spec.num_redundant = 1 + rng.NextUint64Below(2);
  spec.missing_rate = (seed % 3 == 0) ? 0.02 + 0.1 * rng.NextDouble() : 0.0;
  spec.seed = seed;
  auto data = data::MakeSyntheticDataset(spec);
  SAFE_CHECK(data.ok()) << data.status().ToString();
  return *std::move(data);
}

/// Appends a constant column (degenerate input: zero variance, IV 0,
/// Pearson undefined — code must treat it as "no signal", not crash).
inline void AppendConstantColumn(Dataset* data, const std::string& name,
                                 double value) {
  std::vector<double> values(data->x.num_rows(), value);
  SAFE_CHECK(data->x.AddColumn(Column(name, std::move(values))).ok());
}

/// Appends a column that is all-NaN except for `keep_every`-strided rows
/// (exercises the missing-bin and pairwise-deletion paths hard).
inline void AppendMostlyMissingColumn(Dataset* data, const std::string& name,
                                      uint64_t seed, size_t keep_every = 7) {
  Rng rng(seed ^ 0xD1B54A32D192ED03ULL);
  std::vector<double> values(data->x.num_rows(),
                             std::numeric_limits<double>::quiet_NaN());
  for (size_t r = 0; r < values.size(); r += keep_every) {
    values[r] = rng.NextDouble() * 4.0 - 2.0;
  }
  SAFE_CHECK(data->x.AddColumn(Column(name, std::move(values))).ok());
}

}  // namespace testutil
}  // namespace safe
