#include "src/stats/chimerge.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"

namespace safe {
namespace {

TEST(ChiSquareTest, IdenticalDistributionsScoreLow) {
  EXPECT_LT(ChiSquare(50, 100, 50, 100), 0.1);
}

TEST(ChiSquareTest, OppositeDistributionsScoreHigh) {
  EXPECT_GT(ChiSquare(95, 100, 5, 100), 50.0);
}

TEST(ChiSquareTest, SymmetricInCells) {
  EXPECT_DOUBLE_EQ(ChiSquare(30, 100, 70, 100), ChiSquare(70, 100, 30, 100));
}

TEST(ChiSquareTest, EmptyCellsStayFinite) {
  EXPECT_TRUE(std::isfinite(ChiSquare(0, 0, 5, 10)));
  EXPECT_TRUE(std::isfinite(ChiSquare(0, 10, 10, 10)));
}

TEST(ChiMergeTest, FindsTheTrueBoundary) {
  // Label flips exactly at value 0: ChiMerge should keep a cut near 0 and
  // merge everything else.
  Rng rng(1);
  std::vector<double> values;
  std::vector<double> labels;
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.NextUniform(-1.0, 1.0);
    values.push_back(v);
    labels.push_back(v > 0.0 ? 1.0 : 0.0);
  }
  ChiMergeOptions options;
  options.max_bins = 8;
  auto edges = ChiMergeEdges(values, labels, options);
  ASSERT_TRUE(edges.ok()) << edges.status().ToString();
  ASSERT_FALSE(edges->edges.empty());
  // Some edge lies within a hair of the true boundary.
  double closest = 1e9;
  for (double e : edges->edges) closest = std::min(closest, std::fabs(e));
  EXPECT_LT(closest, 0.05);
}

TEST(ChiMergeTest, MergesUninformativeFeatureAggressively) {
  // Labels independent of the feature: every adjacent pair is similar, so
  // ChiMerge merges down to very few bins.
  Rng rng(2);
  std::vector<double> values;
  std::vector<double> labels;
  for (int i = 0; i < 4000; ++i) {
    values.push_back(rng.NextGaussian());
    labels.push_back(rng.NextBernoulli(0.5) ? 1.0 : 0.0);
  }
  auto edges = ChiMergeEdges(values, labels);
  ASSERT_TRUE(edges.ok());
  // Far below both the 64 initial bins and the max_bins cap of 10.
  EXPECT_LE(edges->num_bins(), 6u);
}

TEST(ChiMergeTest, RespectsMaxBins) {
  Rng rng(3);
  std::vector<double> values;
  std::vector<double> labels;
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.NextUniform(0.0, 10.0);
    values.push_back(v);
    // Step-function label: many genuine boundaries.
    labels.push_back(static_cast<int>(v) % 2 == 0 ? 1.0 : 0.0);
  }
  ChiMergeOptions options;
  options.max_bins = 6;
  auto edges = ChiMergeEdges(values, labels, options);
  ASSERT_TRUE(edges.ok());
  EXPECT_LE(edges->num_bins(), 6u);
  EXPECT_GE(edges->num_bins(), 2u);
}

TEST(ChiMergeTest, Validation) {
  EXPECT_FALSE(ChiMergeEdges({}, {}).ok());
  EXPECT_FALSE(ChiMergeEdges({1.0, 2.0}, {1.0}).ok());
  ChiMergeOptions options;
  options.max_bins = 1;
  EXPECT_FALSE(ChiMergeEdges({1.0, 2.0}, {1.0, 0.0}, options).ok());
}

TEST(ChiMergeTest, MissingValuesIgnoredInFitting) {
  Rng rng(4);
  std::vector<double> values;
  std::vector<double> labels;
  for (int i = 0; i < 2000; ++i) {
    const bool missing = rng.NextBernoulli(0.2);
    const double v = rng.NextUniform(-1.0, 1.0);
    values.push_back(missing ? std::nan("") : v);
    labels.push_back(v > 0.0 ? 1.0 : 0.0);
  }
  auto edges = ChiMergeEdges(values, labels);
  ASSERT_TRUE(edges.ok());
  EXPECT_FALSE(edges->edges.empty());
  // NaN still routes to the dedicated missing bin at apply time.
  EXPECT_EQ(edges->BinIndex(std::nan("")), edges->missing_bin());
}

}  // namespace
}  // namespace safe
