#include "src/dataframe/csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

namespace safe {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "safe_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(CsvTest, ReadsHeaderAndValues) {
  WriteFile("a,b\n1,2\n3,4\n");
  auto frame = ReadCsv(path_);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->num_columns(), 2u);
  EXPECT_EQ(frame->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(frame->at(1, 1), 4.0);
}

TEST_F(CsvTest, HeaderlessGetsSyntheticNames) {
  WriteFile("1,2\n3,4\n");
  CsvReadOptions opts;
  opts.has_header = false;
  auto frame = ReadCsv(path_, opts);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->column(0).name(), "c0");
  EXPECT_EQ(frame->num_rows(), 2u);
}

TEST_F(CsvTest, MissingTokensBecomeNaN) {
  WriteFile("a,b\n1,\nNA,4\n?,nan\n");
  auto frame = ReadCsv(path_);
  ASSERT_TRUE(frame.ok());
  EXPECT_TRUE(std::isnan(frame->at(0, 1)));
  EXPECT_TRUE(std::isnan(frame->at(1, 0)));
  EXPECT_TRUE(std::isnan(frame->at(2, 0)));
  EXPECT_TRUE(std::isnan(frame->at(2, 1)));
}

TEST_F(CsvTest, RejectsRaggedRows) {
  WriteFile("a,b\n1,2,3\n");
  auto frame = ReadCsv(path_);
  ASSERT_FALSE(frame.ok());
  EXPECT_NE(frame.status().message().find(":2"), std::string::npos);
}

TEST_F(CsvTest, RejectsGarbageField) {
  WriteFile("a,b\n1,hello\n");
  EXPECT_FALSE(ReadCsv(path_).ok());
}

TEST_F(CsvTest, MissingFileIsIoError) {
  auto frame = ReadCsv("/nonexistent/definitely/not/here.csv");
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIoError);
}

TEST_F(CsvTest, EmptyFileFails) {
  WriteFile("");
  EXPECT_FALSE(ReadCsv(path_).ok());
}

TEST_F(CsvTest, SkipsBlankLinesAndCrLf) {
  WriteFile("a,b\r\n1,2\r\n\r\n3,4\r\n");
  auto frame = ReadCsv(path_);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->num_rows(), 2u);
}

TEST_F(CsvTest, RoundTripsThroughWrite) {
  DataFrame f;
  ASSERT_TRUE(f.AddColumn(Column("x", {1.5, std::nan(""), -3.25})).ok());
  ASSERT_TRUE(f.AddColumn(Column("y", {0.0, 1.0, 1.0})).ok());
  ASSERT_TRUE(WriteCsv(f, path_).ok());

  auto back = ReadCsv(path_);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 3u);
  EXPECT_DOUBLE_EQ(back->at(0, 0), 1.5);
  EXPECT_TRUE(std::isnan(back->at(1, 0)));
  EXPECT_DOUBLE_EQ(back->at(2, 0), -3.25);
}

TEST_F(CsvTest, ReadCsvDatasetPopsLabel) {
  WriteFile("f1,f2,label\n0.5,1.5,1\n0.2,2.5,0\n");
  auto ds = ReadCsvDataset(path_, "label");
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->x.num_columns(), 2u);
  EXPECT_EQ(ds->labels(), (std::vector<double>{1.0, 0.0}));
}

TEST_F(CsvTest, ReadCsvDatasetRejectsNonBinaryLabel) {
  WriteFile("f1,label\n0.5,2\n0.2,0\n");
  EXPECT_FALSE(ReadCsvDataset(path_, "label").ok());
}

TEST_F(CsvTest, ReadCsvDatasetMissingLabelColumn) {
  WriteFile("f1,f2\n0.5,1\n");
  auto ds = ReadCsvDataset(path_, "label");
  ASSERT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace safe
