#include "src/data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/data/benchmark_suite.h"
#include "src/data/business.h"
#include "src/stats/correlation.h"
#include "src/stats/descriptive.h"

namespace safe {
namespace data {
namespace {

TEST(SyntheticTest, ShapeMatchesSpec) {
  SyntheticSpec spec;
  spec.num_rows = 500;
  spec.num_features = 12;
  spec.num_informative = 4;
  spec.num_interactions = 2;
  auto data = MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->num_rows(), 500u);
  EXPECT_EQ(data->x.num_columns(), 12u);
  EXPECT_EQ(data->labels().size(), 500u);
}

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.seed = 5;
  auto a = MakeSyntheticDataset(spec);
  auto b = MakeSyntheticDataset(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t r = 0; r < a->num_rows(); ++r) {
    for (size_t c = 0; c < a->x.num_columns(); ++c) {
      EXPECT_DOUBLE_EQ(a->x.at(r, c), b->x.at(r, c));
    }
    EXPECT_DOUBLE_EQ(a->labels()[r], b->labels()[r]);
  }
  spec.seed = 6;
  auto c = MakeSyntheticDataset(spec);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (size_t r = 0; r < a->num_rows() && !any_diff; ++r) {
    if (a->x.at(r, 0) != c->x.at(r, 0)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, PositiveRateApproximatelyRespected) {
  SyntheticSpec spec;
  spec.num_rows = 5000;
  spec.positive_rate = 0.2;
  spec.label_flip = 0.0;
  auto data = MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());
  const double rate =
      static_cast<double>(CountEqual(data->labels(), 1.0)) / 5000.0;
  EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(SyntheticTest, BothClassesAlwaysPresent) {
  SyntheticSpec spec;
  spec.num_rows = 20;
  spec.positive_rate = 0.05;  // tiny data, extreme rate
  auto data = MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());
  EXPECT_GT(CountEqual(data->labels(), 1.0), 0u);
  EXPECT_GT(CountEqual(data->labels(), 0.0), 0u);
}

TEST(SyntheticTest, RedundantColumnsAreHighlyCorrelated) {
  SyntheticSpec spec;
  spec.num_rows = 2000;
  spec.num_features = 10;
  spec.num_informative = 4;
  spec.num_redundant = 2;
  spec.seed = 12;
  auto data = MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());
  auto mat = PearsonMatrix(data->x);
  int strong_pairs = 0;
  for (size_t i = 0; i < mat.size(); ++i) {
    for (size_t j = i + 1; j < mat.size(); ++j) {
      if (std::fabs(mat[i][j]) > 0.95) ++strong_pairs;
    }
  }
  EXPECT_GE(strong_pairs, 2);
}

TEST(SyntheticTest, MissingRateApplied) {
  SyntheticSpec spec;
  spec.num_rows = 2000;
  spec.num_features = 5;
  spec.num_informative = 3;
  spec.missing_rate = 0.2;
  auto data = MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());
  size_t missing = 0;
  for (size_t c = 0; c < data->x.num_columns(); ++c) {
    missing += data->x.column(c).CountMissing();
  }
  const double rate = static_cast<double>(missing) / (2000.0 * 5.0);
  EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(SyntheticTest, SpecValidation) {
  SyntheticSpec spec;
  spec.num_rows = 5;
  EXPECT_FALSE(MakeSyntheticDataset(spec).ok());
  spec = SyntheticSpec();
  spec.num_informative = 0;
  EXPECT_FALSE(MakeSyntheticDataset(spec).ok());
  spec = SyntheticSpec();
  spec.num_informative = 20;
  spec.num_features = 10;
  EXPECT_FALSE(MakeSyntheticDataset(spec).ok());
  spec = SyntheticSpec();
  spec.positive_rate = 0.0;
  EXPECT_FALSE(MakeSyntheticDataset(spec).ok());
  spec = SyntheticSpec();
  spec.num_informative = 1;
  spec.num_interactions = 2;
  EXPECT_FALSE(MakeSyntheticDataset(spec).ok());
}

TEST(SyntheticTest, SplitSizes) {
  SyntheticSpec spec;
  auto split = MakeSyntheticSplit(spec, 300, 100, 100);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.num_rows(), 300u);
  EXPECT_EQ(split->valid.num_rows(), 100u);
  EXPECT_EQ(split->test.num_rows(), 100u);
}

TEST(BenchmarkSuiteTest, TwelveDatasetsMatchTableIV) {
  const auto& suite = BenchmarkSuite();
  ASSERT_EQ(suite.size(), 12u);
  EXPECT_EQ(suite[0].name, "valley");
  EXPECT_EQ(suite[0].n_train, 900u);
  EXPECT_EQ(suite[0].num_features, 100u);
  EXPECT_EQ(suite[2].name, "gina");
  EXPECT_EQ(suite[2].num_features, 970u);
  EXPECT_EQ(suite[11].name, "vehicle");
  EXPECT_EQ(suite[11].n_valid, 18528u);
}

TEST(BenchmarkSuiteTest, FindByName) {
  auto info = FindBenchmarkDataset("magic");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->n_train, 13000u);
  EXPECT_FALSE(FindBenchmarkDataset("nope").ok());
}

TEST(BenchmarkSuiteTest, ScaledSplitGenerates) {
  auto info = FindBenchmarkDataset("banknote");
  ASSERT_TRUE(info.ok());
  auto split = MakeBenchmarkSplit(*info, 0.5);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  EXPECT_EQ(split->train.num_rows(), 500u);
  EXPECT_EQ(split->test.num_rows(), 186u);
  EXPECT_EQ(split->train.x.num_columns(), 4u);
  EXPECT_FALSE(MakeBenchmarkSplit(*info, 0.0).ok());
  EXPECT_FALSE(MakeBenchmarkSplit(*info, 1.5).ok());
}

TEST(BusinessSuiteTest, ShapesMatchTableVII) {
  const auto& suite = BusinessSuite();
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0].n_train, 2502617u);
  EXPECT_EQ(suite[0].num_features, 81u);
  EXPECT_EQ(suite[2].n_train, 8000000u);
}

TEST(BusinessSuiteTest, ScaledGenerationIsImbalanced) {
  auto split = MakeBusinessSplit(BusinessSuite()[0], 0.002);
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  const double rate =
      static_cast<double>(CountEqual(split->train.labels(), 1.0)) /
      static_cast<double>(split->train.num_rows());
  EXPECT_LT(rate, 0.1);
  EXPECT_GT(rate, 0.0);
}

}  // namespace
}  // namespace data
}  // namespace safe
